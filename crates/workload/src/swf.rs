//! Standard Workload Format (SWF) trace I/O.
//!
//! SWF is the lingua franca of the parallel-workload-archive ecosystem:
//! one job per line, 18 whitespace-separated integer fields, `;` comment
//! headers. Supporting it lets nodeshare replay real traces in place of
//! the paper's site-local workload, and export generated campaigns for
//! other simulators.
//!
//! Field reference (1-based, as in the SWF definition):
//! 1 job number · 2 submit · 3 wait · 4 run time · 5 allocated procs ·
//! 6 avg CPU time · 7 used memory · 8 requested procs · 9 requested time ·
//! 10 requested memory · 11 status · 12 user · 13 group · 14 executable ·
//! 15 queue · 16 partition · 17 preceding job · 18 think time. Unknown
//! values are `-1`.

use crate::job::{JobSpec, Seconds, Workload};
use crate::source::{JobSource, ReorderBuffer, SourceError};
use nodeshare_cluster::JobId;
use nodeshare_perf::{AppCatalog, AppId};
use serde::{Deserialize, Serialize};
use std::io::BufRead;

/// One parsed SWF line.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SwfRecord {
    /// Field 1: job number.
    pub job: i64,
    /// Field 2: submit time, seconds from trace epoch.
    pub submit: i64,
    /// Field 3: wait time in seconds (−1 unknown).
    pub wait: i64,
    /// Field 4: run time in seconds (−1 unknown).
    pub run_time: i64,
    /// Field 5: allocated processors (−1 unknown).
    pub alloc_procs: i64,
    /// Field 8: requested processors (−1 unknown).
    pub req_procs: i64,
    /// Field 9: requested (wall) time in seconds (−1 unknown).
    pub req_time: i64,
    /// Field 11: completion status.
    pub status: i64,
    /// Field 12: user id (−1 unknown).
    pub user: i64,
    /// Field 14: executable/application number (−1 unknown).
    pub executable: i64,
}

/// Errors from SWF parsing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SwfError {
    /// A data line had fewer than 18 fields.
    TooFewFields {
        /// 1-based line number.
        line: usize,
        /// Fields found.
        found: usize,
    },
    /// A field failed integer parsing.
    BadField {
        /// 1-based line number.
        line: usize,
        /// 1-based field index.
        field: usize,
        /// Offending token.
        token: String,
    },
}

impl std::fmt::Display for SwfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SwfError::TooFewFields { line, found } => {
                write!(f, "line {line}: expected 18 fields, found {found}")
            }
            SwfError::BadField { line, field, token } => {
                write!(f, "line {line}, field {field}: cannot parse {token:?}")
            }
        }
    }
}

impl std::error::Error for SwfError {}

impl From<SwfError> for SourceError {
    fn from(e: SwfError) -> Self {
        let line = match e {
            SwfError::TooFewFields { line, .. } | SwfError::BadField { line, .. } => line,
        };
        SourceError {
            line: Some(line),
            message: e.to_string(),
        }
    }
}

/// Parses one SWF line (1-based `lineno` for diagnostics). `Ok(None)`
/// for comment and blank lines.
pub fn parse_line(lineno: usize, line: &str) -> Result<Option<SwfRecord>, SwfError> {
    let line = line.trim();
    if line.is_empty() || line.starts_with(';') {
        return Ok(None);
    }
    let fields: Vec<&str> = line.split_whitespace().collect();
    if fields.len() < 18 {
        return Err(SwfError::TooFewFields {
            line: lineno,
            found: fields.len(),
        });
    }
    let get = |i: usize| -> Result<i64, SwfError> {
        fields[i - 1].parse().map_err(|_| SwfError::BadField {
            line: lineno,
            field: i,
            token: fields[i - 1].to_string(),
        })
    };
    Ok(Some(SwfRecord {
        job: get(1)?,
        submit: get(2)?,
        wait: get(3)?,
        run_time: get(4)?,
        alloc_procs: get(5)?,
        req_procs: get(8)?,
        req_time: get(9)?,
        status: get(11)?,
        user: get(12)?,
        executable: get(14)?,
    }))
}

/// Parses SWF text (comments and blank lines skipped).
pub fn parse(text: &str) -> Result<Vec<SwfRecord>, SwfError> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if let Some(rec) = parse_line(lineno + 1, line)? {
            out.push(rec);
        }
    }
    Ok(out)
}

/// Options controlling SWF → [`Workload`] conversion.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SwfImportOptions {
    /// Cores per node of the target cluster (processor counts become
    /// `ceil(procs / cores_per_node)` nodes).
    pub cores_per_node: u32,
    /// Memory charged per node when the trace gives none, MiB.
    pub default_mem_per_node_mib: u32,
    /// Whether imported jobs opt into sharing.
    pub share_eligible: bool,
}

impl Default for SwfImportOptions {
    fn default() -> Self {
        SwfImportOptions {
            cores_per_node: 32,
            default_mem_per_node_mib: 4 * 1024,
            share_eligible: true,
        }
    }
}

/// Converts one record into a [`JobSpec`] with id `next_id` (advanced on
/// success), or `None` for records with unusable sizes, runtimes, or
/// submit times. Both the materialized [`to_workload`] and the streaming
/// [`SwfSource`] go through this function — ids are assigned in *file
/// order* either way, which is what makes the two paths bit-identical.
pub fn record_to_spec(
    r: &SwfRecord,
    next_id: &mut u64,
    catalog: &AppCatalog,
    opts: &SwfImportOptions,
) -> Option<JobSpec> {
    let procs = if r.req_procs > 0 {
        r.req_procs
    } else {
        r.alloc_procs
    };
    if procs <= 0 || r.run_time <= 0 || r.submit < 0 {
        return None;
    }
    let nodes = (procs as u64).div_ceil(opts.cores_per_node as u64) as u32;
    let runtime = r.run_time as Seconds;
    let estimate = if r.req_time > 0 {
        (r.req_time as Seconds).max(runtime)
    } else {
        runtime
    };
    let app_idx = if r.executable >= 0 {
        (r.executable as usize) % catalog.len()
    } else {
        (r.job.unsigned_abs() as usize) % catalog.len()
    };
    let app = AppId(app_idx as u8);
    let id = JobId(*next_id);
    *next_id += 1;
    Some(JobSpec {
        id,
        app,
        nodes,
        submit: r.submit as Seconds,
        malleable: Default::default(),
        runtime_exclusive: runtime,
        walltime_estimate: estimate,
        mem_per_node_mib: catalog
            .get(app)
            .map(|a| {
                a.mem_per_node_mib
                    .try_into()
                    // detlint: allow(D5, invariant stated in the expect message; violating it is a bug, not a recoverable state)
                    .expect("catalog memory fits u32 MiB")
            })
            .unwrap_or(opts.default_mem_per_node_mib),
        share_eligible: opts.share_eligible,
        user: r.user.max(0) as u32,
    })
}

/// Converts parsed records into a workload, mapping each record's
/// executable number onto the catalog (stable modulo mapping). Records
/// with unusable sizes or runtimes (≤ 0) are skipped; the count of skipped
/// records is returned alongside.
pub fn to_workload(
    records: &[SwfRecord],
    catalog: &AppCatalog,
    opts: &SwfImportOptions,
) -> (Workload, usize) {
    let mut jobs = Vec::with_capacity(records.len());
    let mut skipped = 0usize;
    let mut next_id = 0u64;
    for r in records {
        match record_to_spec(r, &mut next_id, catalog, opts) {
            Some(spec) => jobs.push(spec),
            None => skipped += 1,
        }
    }
    (
        // detlint: allow(D5, invariant stated in the expect message; violating it is a bug, not a recoverable state)
        Workload::new(jobs).expect("imported jobs are validated above"),
        skipped,
    )
}

/// How many input lines a streaming trace source parses per
/// [`JobSource::next_chunk`] round before draining the reorder buffer.
pub(crate) const STREAM_BATCH_LINES: usize = 4096;

/// Streams an SWF trace line by line through the [`JobSource`] contract,
/// never materializing the file.
///
/// Ids are assigned in file order (exactly as [`to_workload`]), and jobs
/// are released in `(submit, id)` order through a [`ReorderBuffer`] — so
/// for any trace whose submit jitter fits the window, a streamed run is
/// bit-identical to materializing the file first. The default window is
/// 0: SWF convention is submit-sorted, and a violation is reported as an
/// error naming the line rather than silently misordering.
pub struct SwfSource<'c, R> {
    reader: R,
    catalog: &'c AppCatalog,
    opts: SwfImportOptions,
    rb: ReorderBuffer,
    buf: String,
    lineno: usize,
    next_id: u64,
    skipped: usize,
    eof: bool,
}

impl<'c, R: BufRead> SwfSource<'c, R> {
    /// A streaming source over `reader` with a submit-sorted input
    /// requirement (reorder window 0).
    pub fn new(reader: R, catalog: &'c AppCatalog, opts: SwfImportOptions) -> Self {
        SwfSource::with_reorder_window(reader, catalog, opts, 0.0)
    }

    /// As [`SwfSource::new`], tolerating `window` seconds of
    /// submit-order jitter.
    pub fn with_reorder_window(
        reader: R,
        catalog: &'c AppCatalog,
        opts: SwfImportOptions,
        window: Seconds,
    ) -> Self {
        SwfSource {
            reader,
            catalog,
            opts,
            rb: ReorderBuffer::new(window),
            buf: String::new(),
            lineno: 0,
            next_id: 0,
            skipped: 0,
            eof: false,
        }
    }

    /// Records skipped so far for unusable sizes/runtimes (the
    /// [`to_workload`] skip rule).
    pub fn skipped(&self) -> usize {
        self.skipped
    }

    /// Reads one line; `Ok(false)` at end of input.
    fn read_line(&mut self) -> Result<bool, SourceError> {
        self.buf.clear();
        let n = self
            .reader
            .read_line(&mut self.buf)
            .map_err(|e| SourceError::at_line(self.lineno + 1, format!("read failed: {e}")))?;
        if n == 0 {
            return Ok(false);
        }
        self.lineno += 1;
        Ok(true)
    }

    fn ingest_line(&mut self) -> Result<(), SourceError> {
        let Some(rec) = parse_line(self.lineno, &self.buf)? else {
            return Ok(());
        };
        match record_to_spec(&rec, &mut self.next_id, self.catalog, &self.opts) {
            Some(spec) => {
                let submit = spec.submit;
                self.rb.push(spec).map_err(|lateness| {
                    SourceError::at_line(
                        self.lineno,
                        format!(
                            "submit {submit} goes back {lateness} s beyond the reorder \
                             window — pass a larger window for this trace"
                        ),
                    )
                })?;
            }
            None => self.skipped += 1,
        }
        Ok(())
    }
}

impl<R: BufRead> JobSource for SwfSource<'_, R> {
    fn next_chunk(&mut self, out: &mut Vec<JobSpec>) -> Result<Option<Seconds>, SourceError> {
        while !self.eof {
            for _ in 0..STREAM_BATCH_LINES {
                if !self.read_line()? {
                    self.eof = true;
                    break;
                }
                self.ingest_line()?;
            }
            if self.eof {
                break;
            }
            if self.rb.drain_ready(out) > 0 {
                return Ok(Some(self.rb.horizon()));
            }
        }
        self.rb.drain_all(out);
        Ok(None)
    }
}

/// Serializes a workload to SWF text (with a descriptive comment header).
///
/// Times are rounded to whole seconds, as the format requires. The
/// executable field carries the app id, so an export/import cycle through
/// the same catalog preserves app assignments.
pub fn write(workload: &Workload, cores_per_node: u32) -> String {
    let mut out = String::with_capacity(workload.len() * 80 + 128);
    out.push_str("; SWF export from nodeshare\n");
    out.push_str("; MaxNodes: see importing cluster\n");
    for j in workload.jobs() {
        let procs = j.nodes as u64 * cores_per_node as u64;
        // 18 fields; unknowns are -1.
        out.push_str(&format!(
            "{} {} -1 {} {} -1 -1 {} {} -1 1 {} -1 {} -1 -1 -1 -1\n",
            j.id.0 + 1,
            j.submit.round() as i64,
            j.runtime_exclusive.round().max(1.0) as i64,
            procs,
            procs,
            j.walltime_estimate.ceil() as i64,
            j.user,
            j.app.0,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::WorkloadSpec;

    const SAMPLE: &str = "\
; Comment header
; UnixStartTime: 0

1 0 10 3600 64 -1 -1 64 7200 -1 1 5 -1 2 -1 -1 -1 -1
2 30 -1 100 -1 -1 -1 32 -1 -1 1 6 -1 -1 -1 -1 -1 -1
3 60 0 -1 16 -1 -1 16 600 -1 0 7 -1 1 -1 -1 -1 -1
";

    #[test]
    fn parses_sample_records() {
        let recs = parse(SAMPLE).unwrap();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0].job, 1);
        assert_eq!(recs[0].run_time, 3600);
        assert_eq!(recs[0].req_procs, 64);
        assert_eq!(recs[0].executable, 2);
        assert_eq!(recs[1].req_time, -1);
    }

    #[test]
    fn rejects_malformed_lines() {
        let err = parse("1 2 3\n").unwrap_err();
        assert_eq!(err, SwfError::TooFewFields { line: 1, found: 3 });
        let err = parse("1 x 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18\n").unwrap_err();
        assert!(matches!(err, SwfError::BadField { field: 2, .. }));
    }

    #[test]
    fn conversion_skips_unusable_records() {
        let catalog = AppCatalog::trinity();
        let recs = parse(SAMPLE).unwrap();
        let (w, skipped) = to_workload(&recs, &catalog, &SwfImportOptions::default());
        assert_eq!(w.len(), 2); // record 3 has run_time = -1
        assert_eq!(skipped, 1);
        let j = &w.jobs()[0];
        assert_eq!(j.nodes, 2); // 64 procs / 32 cores
        assert_eq!(j.runtime_exclusive, 3600.0);
        assert_eq!(j.walltime_estimate, 7200.0);
        assert_eq!(j.user, 5);
    }

    #[test]
    fn estimate_never_below_runtime_on_import() {
        let catalog = AppCatalog::trinity();
        let recs = parse("1 0 -1 5000 32 -1 -1 32 100 -1 1 0 -1 0 -1 -1 -1 -1\n").unwrap();
        let (w, _) = to_workload(&recs, &catalog, &SwfImportOptions::default());
        assert!(w.jobs()[0].walltime_estimate >= w.jobs()[0].runtime_exclusive);
    }

    #[test]
    fn export_import_roundtrip_preserves_structure() {
        let catalog = AppCatalog::trinity();
        let spec = WorkloadSpec::evaluation(&catalog, 9);
        let original = spec.generate(&catalog);
        let text = write(&original, 32);
        let recs = parse(&text).unwrap();
        let (reimported, skipped) = to_workload(
            &recs,
            &catalog,
            &SwfImportOptions {
                cores_per_node: 32,
                ..Default::default()
            },
        );
        assert_eq!(skipped, 0);
        assert_eq!(reimported.len(), original.len());
        for (a, b) in original.jobs().iter().zip(reimported.jobs()) {
            assert_eq!(a.nodes, b.nodes);
            assert_eq!(a.app, b.app);
            assert_eq!(a.user, b.user);
            // Times survive to 1-second rounding.
            assert!((a.submit - b.submit).abs() <= 0.5);
            assert!((a.runtime_exclusive - b.runtime_exclusive).abs() <= 0.5);
            assert!(b.walltime_estimate >= b.runtime_exclusive);
        }
    }

    #[test]
    fn streamed_swf_matches_materialized() {
        let catalog = AppCatalog::trinity();
        let opts = SwfImportOptions::default();
        // The evaluation-campaign export: ~1000 realistic lines.
        let text = write(
            &WorkloadSpec::evaluation(&catalog, 9).generate(&catalog),
            32,
        );
        let (materialized, skipped) = to_workload(&parse(&text).unwrap(), &catalog, &opts);
        let mut src = SwfSource::new(text.as_bytes(), &catalog, opts);
        let streamed = crate::source::collect_source(&mut src).unwrap();
        assert_eq!(streamed, materialized);
        assert_eq!(src.skipped(), skipped);
        // The small sample with a skipped record.
        let (materialized, skipped) = to_workload(&parse(SAMPLE).unwrap(), &catalog, &opts);
        let mut src = SwfSource::new(SAMPLE.as_bytes(), &catalog, opts);
        let streamed = crate::source::collect_source(&mut src).unwrap();
        assert_eq!(streamed, materialized);
        assert_eq!((streamed.len(), src.skipped()), (2, skipped));
    }

    #[test]
    fn streamed_swf_repairs_jitter_within_window() {
        let catalog = AppCatalog::trinity();
        let opts = SwfImportOptions::default();
        let text = "\
1 100 -1 600 32 -1 -1 32 900 -1 1 0 -1 0 -1 -1 -1 -1
2 90 -1 600 32 -1 -1 32 900 -1 1 0 -1 0 -1 -1 -1 -1
3 120 -1 600 32 -1 -1 32 900 -1 1 0 -1 0 -1 -1 -1 -1
";
        let (materialized, _) = to_workload(&parse(text).unwrap(), &catalog, &opts);
        let mut src = SwfSource::with_reorder_window(text.as_bytes(), &catalog, opts, 30.0);
        let streamed = crate::source::collect_source(&mut src).unwrap();
        assert_eq!(streamed, materialized);
        assert_eq!(streamed.jobs()[0].submit, 90.0);
    }

    #[test]
    fn streamed_swf_names_the_line_breaking_submit_order() {
        let catalog = AppCatalog::trinity();
        let text = "\
1 100 -1 600 32 -1 -1 32 900 -1 1 0 -1 0 -1 -1 -1 -1
2 90 -1 600 32 -1 -1 32 900 -1 1 0 -1 0 -1 -1 -1 -1
";
        let mut src = SwfSource::new(text.as_bytes(), &catalog, SwfImportOptions::default());
        let err = crate::source::collect_source(&mut src).unwrap_err();
        assert_eq!(err.line, Some(2));
        assert!(err.message.contains("reorder"), "{}", err.message);
    }

    #[test]
    fn streamed_swf_propagates_parse_errors_with_line() {
        let catalog = AppCatalog::trinity();
        let text = "; header\n1 2 3\n";
        let mut src = SwfSource::new(text.as_bytes(), &catalog, SwfImportOptions::default());
        let err = crate::source::collect_source(&mut src).unwrap_err();
        assert_eq!(err.line, Some(2));
    }

    #[test]
    fn negative_executable_maps_by_job_number() {
        let catalog = AppCatalog::trinity();
        let recs = parse("7 0 -1 100 32 -1 -1 32 200 -1 1 0 -1 -1 -1 -1 -1 -1\n").unwrap();
        let (w, _) = to_workload(&recs, &catalog, &SwfImportOptions::default());
        assert_eq!(w.jobs()[0].app, AppId((7 % catalog.len()) as u8));
    }
}
