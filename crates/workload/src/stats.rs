//! Workload characterization: the summary a scheduling study prints
//! about its input before any scheduling happens.

use crate::job::{Seconds, Workload};
use nodeshare_perf::{AppCatalog, AppId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Aggregate description of a workload.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WorkloadStats {
    /// Number of jobs.
    pub jobs: usize,
    /// Submission span (first to last), seconds.
    pub submit_span: Seconds,
    /// Total work in exclusive node-seconds.
    pub total_work_node_seconds: f64,
    /// Mean nodes per job.
    pub mean_nodes: f64,
    /// Largest node request.
    pub max_nodes: u32,
    /// Mean true runtime, seconds.
    pub mean_runtime: Seconds,
    /// Median true runtime, seconds.
    pub median_runtime: Seconds,
    /// Mean walltime over-estimation factor (estimate / runtime).
    pub mean_overestimate: f64,
    /// Fraction of jobs opting into sharing.
    pub share_fraction: f64,
    /// Jobs per application id.
    pub per_app: BTreeMap<AppId, usize>,
    /// Distinct submitting users.
    pub users: usize,
}

impl WorkloadStats {
    /// Computes the statistics of a workload.
    pub fn of(workload: &Workload) -> WorkloadStats {
        let jobs = workload.jobs();
        let n = jobs.len();
        let mut runtimes: Vec<f64> = jobs.iter().map(|j| j.runtime_exclusive).collect();
        runtimes.sort_by(f64::total_cmp);
        let mut per_app: BTreeMap<AppId, usize> = BTreeMap::new();
        let mut users = std::collections::BTreeSet::new();
        for j in jobs {
            *per_app.entry(j.app).or_insert(0) += 1;
            users.insert(j.user);
        }
        WorkloadStats {
            jobs: n,
            submit_span: workload.submit_span(),
            total_work_node_seconds: workload.total_work_node_seconds(),
            mean_nodes: if n == 0 {
                0.0
            } else {
                jobs.iter().map(|j| j.nodes as f64).sum::<f64>() / n as f64
            },
            max_nodes: jobs.iter().map(|j| j.nodes).max().unwrap_or(0),
            mean_runtime: if n == 0 {
                0.0
            } else {
                runtimes.iter().sum::<f64>() / n as f64
            },
            median_runtime: if n == 0 { 0.0 } else { runtimes[n / 2] },
            mean_overestimate: if n == 0 {
                0.0
            } else {
                jobs.iter()
                    .map(|j| j.walltime_estimate / j.runtime_exclusive)
                    .sum::<f64>()
                    / n as f64
            },
            share_fraction: workload.share_fraction(),
            per_app,
            users: users.len(),
        }
    }

    /// Offered load against a cluster of `nodes` nodes: work arrival rate
    /// over capacity. Meaningful only for workloads with a positive
    /// submission span.
    pub fn offered_load(&self, nodes: u32) -> f64 {
        if self.submit_span <= 0.0 {
            return f64::INFINITY;
        }
        self.total_work_node_seconds / (self.submit_span * nodes as f64)
    }

    /// Renders a human-readable report (app names resolved through the
    /// catalog when available).
    pub fn report(&self, catalog: Option<&AppCatalog>) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "jobs {}  users {}  span {:.1} h  work {:.0} node-h\n",
            self.jobs,
            self.users,
            self.submit_span / 3_600.0,
            self.total_work_node_seconds / 3_600.0
        ));
        out.push_str(&format!(
            "nodes: mean {:.1}, max {}  runtime: mean {:.0} s, median {:.0} s  \
             over-estimate {:.2}x  share-eligible {:.0}%\n",
            self.mean_nodes,
            self.max_nodes,
            self.mean_runtime,
            self.median_runtime,
            self.mean_overestimate,
            self.share_fraction * 100.0
        ));
        for (&app, &count) in &self.per_app {
            let name = catalog
                .and_then(|c| c.get(app))
                .map(|a| a.name.clone())
                .unwrap_or_else(|| app.to_string());
            out.push_str(&format!("  {name:>12}: {count}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::WorkloadSpec;

    fn workload() -> (AppCatalog, Workload) {
        let catalog = AppCatalog::trinity();
        let spec = WorkloadSpec {
            n_jobs: 200,
            ..WorkloadSpec::evaluation(&catalog, 13)
        };
        (catalog.clone(), spec.generate(&catalog))
    }

    #[test]
    fn stats_are_consistent_with_the_workload() {
        let (_, w) = workload();
        let s = WorkloadStats::of(&w);
        assert_eq!(s.jobs, 200);
        assert_eq!(s.total_work_node_seconds, w.total_work_node_seconds());
        assert_eq!(s.submit_span, w.submit_span());
        assert!(s.mean_nodes >= 1.0 && s.mean_nodes <= s.max_nodes as f64);
        assert!(s.median_runtime <= s.mean_runtime, "log-normal skews right");
        assert!(s.mean_overestimate >= 1.0);
        assert_eq!(s.per_app.values().sum::<usize>(), 200);
        assert!(s.users > 1);
    }

    #[test]
    fn offered_load_positive_and_finite_for_arrival_workloads() {
        let (_, w) = workload();
        let s = WorkloadStats::of(&w);
        let load = s.offered_load(128);
        assert!(load > 0.3 && load < 2.0, "load {load}");
    }

    #[test]
    fn batch_workload_has_infinite_offered_load() {
        let catalog = AppCatalog::trinity();
        let spec = WorkloadSpec {
            n_jobs: 10,
            arrival: crate::arrival::ArrivalProcess::Batch,
            ..WorkloadSpec::evaluation(&catalog, 1)
        };
        let s = WorkloadStats::of(&spec.generate(&catalog));
        assert!(s.offered_load(128).is_infinite());
    }

    #[test]
    fn report_mentions_app_names() {
        let (catalog, w) = workload();
        let s = WorkloadStats::of(&w);
        let report = s.report(Some(&catalog));
        assert!(report.contains("miniFE"));
        assert!(report.contains("jobs 200"));
        // Without a catalog, raw ids appear.
        let anon = s.report(None);
        assert!(anon.contains("app0"));
    }

    #[test]
    fn empty_workload_stats_are_zero() {
        let s = WorkloadStats::of(&Workload::default());
        assert_eq!(s.jobs, 0);
        assert_eq!(s.mean_nodes, 0.0);
        assert_eq!(s.median_runtime, 0.0);
    }
}
