//! Job size (node count) and runtime distributions.
//!
//! The shapes follow the stylized facts of production HPC traces: node
//! counts are dominated by small jobs and powers of two, runtimes are
//! roughly log-normal with a heavy tail clipped at the queue limit.

use crate::dist::{clamp, log_normal, weighted_index};
use crate::job::Seconds;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Distribution of requested node counts.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum SizeDist {
    /// Power-of-two sizes `2^0 .. 2^max_exp` with geometrically decaying
    /// weights (`decay` < 1 favors small jobs), plus a `non_pow2` chance of
    /// drawing uniformly from `1..=2^max_exp` instead.
    PowerOfTwo {
        /// Largest exponent: max size is `2^max_exp` nodes.
        max_exp: u32,
        /// Weight ratio between consecutive powers (e.g. 0.7).
        decay: f64,
        /// Probability of an arbitrary (non-power-of-two) size.
        non_pow2: f64,
    },
    /// Every job requests exactly `nodes` nodes.
    Fixed {
        /// The constant node count.
        nodes: u32,
    },
    /// Uniform over `min..=max` nodes.
    Uniform {
        /// Smallest size.
        min: u32,
        /// Largest size.
        max: u32,
    },
}

impl SizeDist {
    /// The canonical evaluation distribution: sizes 1–32 nodes, small-job
    /// heavy, 20% non-power-of-two.
    pub fn evaluation() -> Self {
        SizeDist::PowerOfTwo {
            max_exp: 5,
            decay: 0.65,
            non_pow2: 0.2,
        }
    }

    /// Largest size the distribution can produce.
    pub fn max_nodes(&self) -> u32 {
        match self {
            SizeDist::PowerOfTwo { max_exp, .. } => 1 << max_exp,
            SizeDist::Fixed { nodes } => *nodes,
            SizeDist::Uniform { max, .. } => *max,
        }
    }

    /// Samples a node count.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        match self {
            SizeDist::PowerOfTwo {
                max_exp,
                decay,
                non_pow2,
            } => {
                if rng.random::<f64>() < *non_pow2 {
                    return rng.random_range(1..=(1u32 << max_exp));
                }
                let weights: Vec<f64> = (0..=*max_exp).map(|e| decay.powi(e as i32)).collect();
                1 << weighted_index(rng, &weights)
            }
            SizeDist::Fixed { nodes } => *nodes,
            SizeDist::Uniform { min, max } => rng.random_range(*min..=*max),
        }
    }
}

/// Distribution of true (exclusive) runtimes.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RuntimeDist {
    /// Median runtime in seconds.
    pub median: Seconds,
    /// Log-space sigma (≈ 1.0–1.5 for production traces).
    pub sigma: f64,
    /// Shortest possible runtime.
    pub min: Seconds,
    /// Queue limit: runtimes are clipped here.
    pub max: Seconds,
}

impl RuntimeDist {
    /// The canonical evaluation distribution: median 30 min, heavy tail,
    /// clipped to a 12-hour queue limit.
    pub fn evaluation() -> Self {
        RuntimeDist {
            median: 1_800.0,
            sigma: 1.2,
            min: 60.0,
            max: 43_200.0,
        }
    }

    /// Samples a runtime.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Seconds {
        clamp(log_normal(rng, self.median, self.sigma), self.min, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(11)
    }

    #[test]
    fn pow2_sizes_are_mostly_powers_of_two_and_bounded() {
        let mut r = rng();
        let d = SizeDist::evaluation();
        let mut pow2 = 0;
        let n = 10_000;
        for _ in 0..n {
            let s = d.sample(&mut r);
            assert!(s >= 1 && s <= d.max_nodes());
            if s.is_power_of_two() {
                pow2 += 1;
            }
        }
        assert!(pow2 as f64 / n as f64 > 0.8, "pow2 fraction too low");
    }

    #[test]
    fn pow2_favors_small_jobs() {
        let mut r = rng();
        let d = SizeDist::evaluation();
        let sizes: Vec<u32> = (0..10_000).map(|_| d.sample(&mut r)).collect();
        let small = sizes.iter().filter(|&&s| s <= 4).count();
        assert!(small as f64 / sizes.len() as f64 > 0.5);
    }

    #[test]
    fn fixed_and_uniform() {
        let mut r = rng();
        assert_eq!(SizeDist::Fixed { nodes: 7 }.sample(&mut r), 7);
        assert_eq!(SizeDist::Fixed { nodes: 7 }.max_nodes(), 7);
        let d = SizeDist::Uniform { min: 2, max: 5 };
        for _ in 0..100 {
            let s = d.sample(&mut r);
            assert!((2..=5).contains(&s));
        }
    }

    #[test]
    fn runtimes_respect_bounds_and_median() {
        let mut r = rng();
        let d = RuntimeDist::evaluation();
        let mut samples: Vec<f64> = (0..20_001).map(|_| d.sample(&mut r)).collect();
        assert!(samples.iter().all(|&t| t >= d.min && t <= d.max));
        samples.sort_by(f64::total_cmp);
        let median = samples[samples.len() / 2];
        assert!((median / d.median - 1.0).abs() < 0.1, "median {median}");
    }

    #[test]
    fn runtime_tail_is_heavy() {
        let mut r = rng();
        let d = RuntimeDist::evaluation();
        let n = 20_000;
        let long = (0..n)
            .map(|_| d.sample(&mut r))
            .filter(|&t| t > 4.0 * d.median)
            .count();
        // A log-normal with sigma 1.2 puts >10% of mass beyond 4× median.
        assert!(long as f64 / n as f64 > 0.08, "tail too light: {long}");
    }
}
