//! Streaming job sources: feed the engine arrival-ordered chunks so a
//! million-job campaign never materializes a million [`JobSpec`]s.
//!
//! The contract is built around a *horizon*: after delivering a chunk, a
//! source promises every job it will ever deliver later submits at or
//! after the returned horizon. The engine can therefore safely process
//! all events strictly before the horizon before asking for more — the
//! only state that has to stay resident is in-flight plus queued jobs.
//!
//! [`Workload`] remains the trivial in-memory source ([`WorkloadSource`]),
//! and [`ReorderBuffer`] gives line-oriented trace readers (SWF, cluster
//! traces) a bounded window to repair mild submit-order jitter while
//! preserving the exact `(submit, id)` order a materialized
//! [`Workload::new`] sort would produce.

use crate::job::{JobSpec, Seconds, Workload};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Error from a job source (I/O, parse, or ordering violation).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SourceError {
    /// 1-based input line for text-trace sources, when known.
    pub line: Option<usize>,
    /// What went wrong.
    pub message: String,
}

impl SourceError {
    /// An error not tied to an input line.
    pub fn new(message: impl Into<String>) -> Self {
        SourceError {
            line: None,
            message: message.into(),
        }
    }

    /// An error at a specific 1-based input line.
    pub fn at_line(line: usize, message: impl Into<String>) -> Self {
        SourceError {
            line: Some(line),
            message: message.into(),
        }
    }
}

impl std::fmt::Display for SourceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.line {
            Some(n) => write!(f, "line {n}: {}", self.message),
            None => write!(f, "{}", self.message),
        }
    }
}

impl std::error::Error for SourceError {}

/// A stream of jobs in submission order, delivered in chunks.
///
/// Implementations must uphold:
///
/// * **Order.** Jobs are delivered in nondecreasing `(submit, id)` order,
///   within and across chunks — the order [`Workload::new`] sorts into.
/// * **Horizon.** `Ok(Some(h))` promises every job delivered by a later
///   call has `submit >= h`.
/// * **Progress.** Every `Ok(Some(_))` call appends at least one job to
///   `out` or returns a strictly larger horizon than the previous call;
///   `Ok(None)` means the stream is exhausted (any final jobs are
///   appended to `out` in the same call).
pub trait JobSource {
    /// Appends the next chunk of jobs to `out` (which is *not* cleared).
    ///
    /// Returns the new horizon, or `Ok(None)` when the source is
    /// exhausted — the final jobs, if any, are delivered in that same
    /// call.
    fn next_chunk(&mut self, out: &mut Vec<JobSpec>) -> Result<Option<Seconds>, SourceError>;

    /// Total number of jobs this source will deliver, when cheaply known.
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// The trivial in-memory source: chunked views over a sorted [`Workload`].
///
/// Splitting a run of equal submit times across chunks is safe: the
/// horizon equals the first undelivered job's submit, and the engine
/// refills before processing any event at or past the horizon.
pub struct WorkloadSource<'a> {
    jobs: &'a [JobSpec],
    pos: usize,
    chunk: usize,
}

impl<'a> WorkloadSource<'a> {
    /// A source over `workload`, delivering at most `chunk_jobs` per call.
    pub fn new(workload: &'a Workload, chunk_jobs: usize) -> Self {
        WorkloadSource {
            jobs: workload.jobs(),
            pos: 0,
            chunk: chunk_jobs.max(1),
        }
    }
}

impl JobSource for WorkloadSource<'_> {
    fn next_chunk(&mut self, out: &mut Vec<JobSpec>) -> Result<Option<Seconds>, SourceError> {
        let end = (self.pos + self.chunk).min(self.jobs.len());
        out.extend_from_slice(&self.jobs[self.pos..end]);
        self.pos = end;
        Ok(self.jobs.get(self.pos).map(|j| j.submit))
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.jobs.len())
    }
}

impl Workload {
    /// A streaming view over this workload delivering `chunk_jobs` jobs
    /// per [`JobSource::next_chunk`] call.
    pub fn source(&self, chunk_jobs: usize) -> WorkloadSource<'_> {
        WorkloadSource::new(self, chunk_jobs)
    }
}

/// Min-heap entry ordered by `(submit, seq)` — `seq` is push order, which
/// for file-ordered id assignment equals id order, reproducing the
/// materialized `(submit, id)` sort.
struct RbEntry {
    submit: Seconds,
    seq: u64,
    spec: JobSpec,
}

impl PartialEq for RbEntry {
    fn eq(&self, other: &Self) -> bool {
        self.submit == other.submit && self.seq == other.seq
    }
}
impl Eq for RbEntry {}
impl Ord for RbEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Inverted: BinaryHeap is a max-heap, we want the earliest first.
        other
            .submit
            .total_cmp(&self.submit)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for RbEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A bounded reorder window for line-oriented trace readers.
///
/// Real traces are *mostly* submit-sorted; this buffer holds jobs whose
/// submit lies within `window` seconds of the highest submit seen (the
/// watermark) and releases everything older in `(submit, push-order)`
/// order. A line arriving more than `window` behind the watermark is an
/// error — the trace needs a bigger window, not silent misordering.
pub struct ReorderBuffer {
    window: Seconds,
    heap: BinaryHeap<RbEntry>,
    seq: u64,
    watermark: Seconds,
}

impl ReorderBuffer {
    /// A buffer tolerating `window` seconds of submit-order jitter
    /// (0 = input must already be submit-sorted).
    pub fn new(window: Seconds) -> Self {
        assert!(
            window >= 0.0 && window.is_finite(),
            "invalid reorder window"
        );
        ReorderBuffer {
            window,
            heap: BinaryHeap::new(),
            seq: 0,
            watermark: f64::NEG_INFINITY,
        }
    }

    /// Accepts a job. `Err(lateness)` when the job's submit is more than
    /// the window behind the watermark (by `lateness` seconds beyond it).
    pub fn push(&mut self, spec: JobSpec) -> Result<(), f64> {
        let cutoff = self.watermark - self.window;
        if spec.submit < cutoff {
            return Err(cutoff - spec.submit);
        }
        self.watermark = self.watermark.max(spec.submit);
        self.heap.push(RbEntry {
            submit: spec.submit,
            seq: self.seq,
            spec,
        });
        self.seq += 1;
        Ok(())
    }

    /// Releases every job guaranteed final — submit at most
    /// `watermark - window` — into `out`, in `(submit, push-order)`
    /// order. Returns how many were released.
    pub fn drain_ready(&mut self, out: &mut Vec<JobSpec>) -> usize {
        let cutoff = self.watermark - self.window;
        let mut n = 0;
        while let Some(top) = self.heap.peek() {
            if top.submit > cutoff {
                break;
            }
            // detlint: allow(D5, peek on the preceding line guarantees an element)
            out.push(self.heap.pop().expect("peeked").spec);
            n += 1;
        }
        n
    }

    /// Releases everything (end of input) into `out`, in order.
    pub fn drain_all(&mut self, out: &mut Vec<JobSpec>) -> usize {
        let mut n = 0;
        while let Some(e) = self.heap.pop() {
            out.push(e.spec);
            n += 1;
        }
        n
    }

    /// The horizon after a [`ReorderBuffer::drain_ready`]: no future line
    /// may carry a submit below this (enforced by [`ReorderBuffer::push`]),
    /// and everything at or below it has been released.
    pub fn horizon(&self) -> Seconds {
        self.watermark - self.window
    }

    /// Number of jobs currently held back.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }
}

/// Drains a [`JobSource`] into a materialized, validated [`Workload`] —
/// the bridge for callers that need random access (stats, sweeps).
pub fn collect_source(source: &mut dyn JobSource) -> Result<Workload, SourceError> {
    let mut jobs = Vec::with_capacity(source.size_hint().unwrap_or(0));
    while source.next_chunk(&mut jobs)?.is_some() {}
    Workload::new(jobs).map_err(SourceError::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodeshare_cluster::JobId;
    use nodeshare_perf::AppId;

    fn job(id: u64, submit: Seconds) -> JobSpec {
        JobSpec {
            malleable: Default::default(),
            id: JobId(id),
            app: AppId(0),
            nodes: 1,
            submit,
            runtime_exclusive: 10.0,
            walltime_estimate: 20.0,
            mem_per_node_mib: 512,
            share_eligible: true,
            user: 0,
        }
    }

    #[test]
    fn workload_source_streams_in_chunks_with_horizons() {
        let w = Workload::new((0..10).map(|i| job(i, i as f64)).collect()).unwrap();
        let mut src = w.source(4);
        assert_eq!(src.size_hint(), Some(10));
        let mut out = Vec::new();
        assert_eq!(src.next_chunk(&mut out), Ok(Some(4.0)));
        assert_eq!(out.len(), 4);
        assert_eq!(src.next_chunk(&mut out), Ok(Some(8.0)));
        assert_eq!(src.next_chunk(&mut out), Ok(None));
        assert_eq!(out.len(), 10);
        assert_eq!(out, w.jobs());
        // Exhausted source stays exhausted.
        assert_eq!(src.next_chunk(&mut out), Ok(None));
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn workload_source_splits_ties_safely() {
        let w = Workload::new((0..6).map(|i| job(i, 5.0)).collect()).unwrap();
        let mut src = w.source(4);
        let mut out = Vec::new();
        // Horizon equals the tie time: the engine refills before popping
        // any event at or past it, so the tie is never processed early.
        assert_eq!(src.next_chunk(&mut out), Ok(Some(5.0)));
        assert_eq!(src.next_chunk(&mut out), Ok(None));
        let ids: Vec<u64> = out.iter().map(|j| j.id.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn reorder_buffer_repairs_jitter_within_window() {
        let mut rb = ReorderBuffer::new(10.0);
        for (id, submit) in [(0, 5.0), (1, 3.0), (2, 9.0), (3, 4.0), (4, 20.0)] {
            rb.push(job(id, submit)).unwrap();
        }
        let mut out = Vec::new();
        rb.drain_ready(&mut out);
        // watermark 20, window 10: everything <= 10 released, in submit
        // order with push-order tie-break.
        let got: Vec<(u64, f64)> = out.iter().map(|j| (j.id.0, j.submit)).collect();
        assert_eq!(got, vec![(1, 3.0), (3, 4.0), (0, 5.0), (2, 9.0)]);
        assert_eq!(rb.pending(), 1);
        assert_eq!(rb.horizon(), 10.0);
        rb.drain_all(&mut out);
        assert_eq!(out.last().unwrap().id.0, 4);
    }

    #[test]
    fn reorder_buffer_rejects_lines_beyond_window() {
        let mut rb = ReorderBuffer::new(2.0);
        rb.push(job(0, 100.0)).unwrap();
        assert_eq!(rb.push(job(1, 97.0)), Err(1.0));
        // Exactly at the cutoff is fine.
        rb.push(job(2, 98.0)).unwrap();
    }

    #[test]
    fn reorder_buffer_zero_window_keeps_equal_submits_in_push_order() {
        let mut rb = ReorderBuffer::new(0.0);
        for id in 0..4 {
            rb.push(job(id, 7.0)).unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(rb.drain_ready(&mut out), 4);
        let ids: Vec<u64> = out.iter().map(|j| j.id.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
        assert!(rb.push(job(9, 6.9)).is_err());
    }

    #[test]
    fn collect_source_round_trips_a_workload() {
        let w = Workload::new((0..25).map(|i| job(i, (i % 7) as f64)).collect()).unwrap();
        let collected = collect_source(&mut w.source(4)).unwrap();
        assert_eq!(collected, w);
    }
}
