//! Synthetic workload generation: composes arrival, size, runtime,
//! estimate, and mix models into a reproducible campaign.

use crate::arrival::ArrivalProcess;
use crate::estimates::EstimateModel;
use crate::job::{JobSpec, Malleability, Seconds, Workload};
use crate::mix::AppMix;
use crate::sizes::{RuntimeDist, SizeDist};
use crate::source::{JobSource, SourceError};
use nodeshare_cluster::JobId;
use nodeshare_perf::AppCatalog;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Full description of a synthetic campaign; `generate` is a pure function
/// of this spec plus a catalog.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Number of jobs.
    pub n_jobs: usize,
    /// Arrival process.
    pub arrival: ArrivalProcess,
    /// Node-count distribution.
    pub sizes: SizeDist,
    /// True-runtime distribution.
    pub runtime: RuntimeDist,
    /// Walltime-estimate model.
    pub estimates: EstimateModel,
    /// Application mixture.
    pub mix: AppMix,
    /// Probability that a job opts into node sharing.
    pub share_fraction: f64,
    /// Probability that a job declares a width-malleability contract
    /// (see [`crate::job::Malleability`]). `0.0` — the default in every
    /// preset — draws **no** RNG at all, so rigid campaigns are
    /// bit-identical to workloads generated before the knob existed.
    pub malleable_fraction: f64,
    /// Number of distinct submitting users.
    pub n_users: u32,
    /// Master seed; every derived stream is a function of it.
    pub seed: u64,
}

impl WorkloadSpec {
    /// The canonical T2/T3 evaluation campaign: 1000 jobs, Poisson
    /// arrivals sized to load a 128-node cluster to ~90% of capacity,
    /// every job share-eligible.
    pub fn evaluation(catalog: &AppCatalog, seed: u64) -> Self {
        WorkloadSpec {
            n_jobs: 1_000,
            // Mean job ≈ 7.2 nodes × ~3800 s ≈ 27.5k node-seconds; at 128
            // nodes, 0.0042 jobs/s ≈ 90% offered load.
            arrival: ArrivalProcess::Poisson { rate: 0.0042 },
            sizes: SizeDist::evaluation(),
            runtime: RuntimeDist::evaluation(),
            estimates: EstimateModel::evaluation(),
            mix: AppMix::uniform(catalog),
            share_fraction: 1.0,
            malleable_fraction: 0.0,
            n_users: 64,
            seed,
        }
    }

    /// Samples the malleability draw for one job of width `nodes`.
    ///
    /// Gated on `malleable_fraction > 0.0` so the disabled (default)
    /// path consumes zero RNG: the per-job draw sequence — and therefore
    /// every rigid workload ever generated — is unchanged. Malleable
    /// jobs may shrink to half their requested width and grow to double
    /// it, paying 15 node-seconds per requested node at each reshape.
    fn sample_malleable(&self, rng: &mut ChaCha8Rng, nodes: u32) -> Malleability {
        if self.malleable_fraction > 0.0 && rng.random::<f64>() < self.malleable_fraction {
            Malleability::range(nodes.div_ceil(2), nodes * 2, nodes as f32 * 15.0)
        } else {
            Malleability::RIGID
        }
    }

    /// Generates the workload.
    pub fn generate(&self, catalog: &AppCatalog) -> Workload {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let arrivals = self.arrival.sample_times(&mut rng, self.n_jobs);
        let mut jobs = Vec::with_capacity(self.n_jobs);
        for (i, submit) in arrivals.into_iter().enumerate() {
            let app = self.mix.sample(&mut rng);
            let nodes = self.sizes.sample(&mut rng);
            let runtime = self.runtime.sample(&mut rng);
            let estimate = self.estimates.sample(&mut rng, runtime);
            let share_eligible = rng.random::<f64>() < self.share_fraction;
            let user = rng.random_range(0..self.n_users.max(1));
            let malleable = self.sample_malleable(&mut rng, nodes);
            jobs.push(JobSpec {
                id: JobId(i as u64),
                app,
                nodes,
                submit,
                runtime_exclusive: runtime,
                walltime_estimate: estimate,
                mem_per_node_mib: catalog
                    .profile(app)
                    .mem_per_node_mib
                    .try_into()
                    // detlint: allow(D5, invariant stated in the expect message; violating it is a bug, not a recoverable state)
                    .expect("catalog memory fits u32 MiB"),
                share_eligible,
                user,
                malleable,
            });
        }
        // detlint: allow(D5, invariant stated in the expect message; violating it is a bug, not a recoverable state)
        Workload::new(jobs).expect("generated jobs are valid by construction")
    }

    /// A streaming source producing *bit-identical* jobs to
    /// [`WorkloadSpec::generate`] in O(1) memory.
    ///
    /// `generate` consumes one seeded RNG in two phases: first all `n`
    /// arrival draws, then the per-job field draws. Streaming replays
    /// that with two cursors over two fresh RNGs seeded identically —
    /// one burns the `n` arrival draws up front (O(n) time, no
    /// allocation) and then serves the field draws; the other serves the
    /// arrival draws incrementally (arrival sampling is a strictly
    /// incremental `next_after` chain, never a sort).
    pub fn stream(&self, catalog: &AppCatalog, chunk_jobs: usize) -> GeneratorSource {
        let mut fields_rng = ChaCha8Rng::seed_from_u64(self.seed);
        let mut t = 0.0;
        for _ in 0..self.n_jobs {
            t = self.arrival.next_after(&mut fields_rng, t);
        }
        GeneratorSource {
            spec: self.clone(),
            mem_by_app: catalog
                .ids()
                .map(|a| {
                    catalog
                        .profile(a)
                        .mem_per_node_mib
                        .try_into()
                        // detlint: allow(D5, invariant stated in the expect message; violating it is a bug, not a recoverable state)
                        .expect("catalog memory fits u32 MiB")
                })
                .collect(),
            arrivals_rng: ChaCha8Rng::seed_from_u64(self.seed),
            fields_rng,
            last_arrival: 0.0,
            next_id: 0,
            pending: None,
            chunk: chunk_jobs.max(1),
        }
    }

    /// Offered load against a cluster: mean work arrival rate over cluster
    /// capacity (node-seconds per second per node). Values near 1.0
    /// saturate the machine.
    pub fn offered_load(&self, catalog: &AppCatalog, node_count: u32) -> f64 {
        // Estimate from a large sample for distribution-agnostic accuracy.
        let sample = WorkloadSpec {
            n_jobs: 4_000,
            seed: self.seed ^ 0x9e37_79b9_7f4a_7c15,
            ..self.clone()
        }
        .generate(catalog);
        let mean_work = sample.total_work_node_seconds() / sample.len() as f64;
        mean_work * self.arrival.mean_rate() / node_count as f64
    }
}

/// Streaming twin of [`WorkloadSpec::generate`] — see
/// [`WorkloadSpec::stream`] for the two-cursor RNG construction. Holds
/// O(1) state: two RNGs, a one-job lookahead, and the per-app memory
/// table.
pub struct GeneratorSource {
    spec: WorkloadSpec,
    mem_by_app: Vec<u32>,
    /// Serves arrival draws incrementally (cursor one: behind).
    arrivals_rng: ChaCha8Rng,
    /// Pre-advanced past all arrival draws; serves field draws (cursor
    /// two: ahead).
    fields_rng: ChaCha8Rng,
    last_arrival: Seconds,
    next_id: u64,
    /// One-job lookahead so each chunk can report the next submit as its
    /// horizon.
    pending: Option<JobSpec>,
    chunk: usize,
}

impl GeneratorSource {
    fn synthesize(&mut self) -> Option<JobSpec> {
        if self.next_id as usize >= self.spec.n_jobs {
            return None;
        }
        let submit = self
            .spec
            .arrival
            .next_after(&mut self.arrivals_rng, self.last_arrival);
        self.last_arrival = submit;
        let rng = &mut self.fields_rng;
        let app = self.spec.mix.sample(rng);
        let nodes = self.spec.sizes.sample(rng);
        let runtime = self.spec.runtime.sample(rng);
        let estimate = self.spec.estimates.sample(rng, runtime);
        let share_eligible = rng.random::<f64>() < self.spec.share_fraction;
        let user = rng.random_range(0..self.spec.n_users.max(1));
        let malleable = self.spec.sample_malleable(rng, nodes);
        let id = JobId(self.next_id);
        self.next_id += 1;
        Some(JobSpec {
            id,
            app,
            nodes,
            submit,
            runtime_exclusive: runtime,
            walltime_estimate: estimate,
            mem_per_node_mib: self.mem_by_app[app.0 as usize],
            share_eligible,
            user,
            malleable,
        })
    }
}

impl JobSource for GeneratorSource {
    fn next_chunk(&mut self, out: &mut Vec<JobSpec>) -> Result<Option<Seconds>, SourceError> {
        let mut added = 0;
        if let Some(j) = self.pending.take() {
            out.push(j);
            added += 1;
        }
        while added < self.chunk {
            match self.synthesize() {
                Some(j) => {
                    out.push(j);
                    added += 1;
                }
                None => return Ok(None),
            }
        }
        match self.synthesize() {
            Some(j) => {
                let horizon = j.submit;
                self.pending = Some(j);
                Ok(Some(horizon))
            }
            None => Ok(None),
        }
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.spec.n_jobs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::collect_source;

    fn spec() -> (AppCatalog, WorkloadSpec) {
        let c = AppCatalog::trinity();
        let s = WorkloadSpec::evaluation(&c, 42);
        (c, s)
    }

    #[test]
    fn generation_is_deterministic() {
        let (c, s) = spec();
        assert_eq!(s.generate(&c), s.generate(&c));
    }

    #[test]
    fn different_seeds_differ() {
        let (c, s) = spec();
        let mut s2 = s.clone();
        s2.seed = 43;
        assert_ne!(s.generate(&c), s2.generate(&c));
    }

    #[test]
    fn generated_jobs_are_consistent() {
        let (c, s) = spec();
        let w = s.generate(&c);
        assert_eq!(w.len(), 1_000);
        for j in w.jobs() {
            assert!(j.walltime_estimate >= j.runtime_exclusive);
            assert_eq!(
                u64::from(j.mem_per_node_mib),
                c.profile(j.app).mem_per_node_mib
            );
            assert!(j.nodes >= 1 && j.nodes <= s.sizes.max_nodes());
            assert!(j.user < s.n_users);
        }
        // ids are dense and sorted by submit.
        assert!(w.jobs().windows(2).all(|p| p[0].submit <= p[1].submit));
    }

    #[test]
    fn share_fraction_is_respected() {
        let (c, mut s) = spec();
        s.share_fraction = 0.3;
        let w = s.generate(&c);
        assert!((w.share_fraction() - 0.3).abs() < 0.05);
        s.share_fraction = 0.0;
        assert_eq!(s.generate(&c).share_fraction(), 0.0);
    }

    #[test]
    fn stream_is_bit_identical_to_generate() {
        let (c, s) = spec();
        let materialized = s.generate(&c);
        for chunk in [1, 7, 256, 5000] {
            let streamed = collect_source(&mut s.stream(&c, chunk)).unwrap();
            assert_eq!(streamed, materialized, "chunk {chunk}");
        }
    }

    #[test]
    fn malleable_fraction_draws_contracts_and_streams_identically() {
        let (c, mut s) = spec();
        s.malleable_fraction = 0.5;
        let w = s.generate(&c);
        let malleable = w.jobs().iter().filter(|j| !j.malleable.is_rigid()).count();
        let frac = malleable as f64 / w.len() as f64;
        assert!((frac - 0.5).abs() < 0.05, "malleable fraction {frac}");
        for j in w.jobs() {
            let m = &j.malleable;
            if !m.is_rigid() {
                assert!(m.min_nodes >= 1 && m.min_nodes <= j.nodes);
                assert!(m.max_nodes >= j.nodes);
                assert!(m.reshape_cost > 0.0);
            }
        }
        // The streaming twin replays the extra draw bit-identically.
        for chunk in [1, 7, 256] {
            let streamed = collect_source(&mut s.stream(&c, chunk)).unwrap();
            assert_eq!(streamed, w, "chunk {chunk}");
        }
    }

    #[test]
    fn disabled_malleability_leaves_rigid_workloads_bit_identical() {
        // The knob at 0.0 must consume zero RNG: the generated jobs are
        // field-for-field what the pre-malleability generator produced.
        let (c, s) = spec();
        assert_eq!(s.malleable_fraction, 0.0);
        let w = s.generate(&c);
        assert!(w.jobs().iter().all(|j| j.malleable.is_rigid()));
        // Enabling the knob leaves the arrival process untouched (all
        // arrivals are drawn before any per-job field) and only appends
        // a draw after the established per-job sequence: the first job's
        // rigid fields are bit-identical either way.
        let mut on = s.clone();
        on.malleable_fraction = 1.0;
        let w_on = on.generate(&c);
        for (a, b) in w.jobs().iter().zip(w_on.jobs()) {
            assert_eq!(a.submit, b.submit);
        }
        let (a, b) = (&w.jobs()[0], &w_on.jobs()[0]);
        assert_eq!(a.nodes, b.nodes);
        assert_eq!(a.runtime_exclusive, b.runtime_exclusive);
        assert_eq!(a.walltime_estimate, b.walltime_estimate);
        assert_eq!(a.share_eligible, b.share_eligible);
        assert_eq!(a.user, b.user);
        assert!(a.malleable.is_rigid() && !b.malleable.is_rigid());
    }

    #[test]
    fn stream_reports_horizons_and_hint() {
        let (c, s) = spec();
        let mut src = s.stream(&c, 100);
        assert_eq!(src.size_hint(), Some(1_000));
        let mut out = Vec::new();
        let h = src.next_chunk(&mut out).unwrap().expect("more jobs remain");
        assert_eq!(out.len(), 100);
        assert!(out.iter().all(|j| j.submit <= h));
        let h2 = src.next_chunk(&mut out).unwrap().expect("more jobs remain");
        assert!(h2 >= h);
        assert_eq!(out.len(), 200);
    }

    #[test]
    fn evaluation_load_is_near_ninety_percent() {
        let (c, s) = spec();
        let load = s.offered_load(&c, 128);
        assert!(load > 0.6 && load < 1.1, "offered load {load}");
    }
}
