//! Site-profile presets: named workload shapes that recur in scheduling
//! studies, so experiments and the CLI can say `--preset capability`
//! instead of hand-tuning five distributions.

use crate::arrival::ArrivalProcess;
use crate::estimates::EstimateModel;
use crate::generator::WorkloadSpec;
use crate::mix::AppMix;
use crate::sizes::{RuntimeDist, SizeDist};
use nodeshare_perf::AppCatalog;

/// Named workload presets.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Preset {
    /// The paper-style evaluation mix at ~90% load (the default).
    Evaluation,
    /// Saturated evaluation mix (~1.7× capacity): the headline regime.
    Saturated,
    /// Capability site: few, large, long jobs (median 2 h, up to half the
    /// machine), lighter load.
    Capability,
    /// Capacity/HTC site: many small short jobs, heavy load, strong
    /// day/night cycle.
    Capacity,
    /// A memory-bandwidth-dominated mix: the worst case for sharing
    /// (few complementary partners exist).
    MemoryHeavy,
    /// Load-spike site: the evaluation mix arriving in pronounced waves
    /// (deep bursts past capacity alternating with near-idle lulls).
    /// The regime where width-malleable jobs pay off — shrink under the
    /// burst, grow into the lull. Jobs are rigid by default; experiments
    /// opt into malleability via `WorkloadSpec::malleable_fraction`.
    Spike,
}

impl Preset {
    /// All presets, for enumeration in help text and tests.
    pub const ALL: [Preset; 6] = [
        Preset::Evaluation,
        Preset::Saturated,
        Preset::Capability,
        Preset::Capacity,
        Preset::MemoryHeavy,
        Preset::Spike,
    ];

    /// Parse from the CLI spelling.
    pub fn parse(name: &str) -> Option<Preset> {
        match name {
            "evaluation" => Some(Preset::Evaluation),
            "saturated" => Some(Preset::Saturated),
            "capability" => Some(Preset::Capability),
            "capacity" => Some(Preset::Capacity),
            "memory-heavy" => Some(Preset::MemoryHeavy),
            "spike" => Some(Preset::Spike),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub const fn name(self) -> &'static str {
        match self {
            Preset::Evaluation => "evaluation",
            Preset::Saturated => "saturated",
            Preset::Capability => "capability",
            Preset::Capacity => "capacity",
            Preset::MemoryHeavy => "memory-heavy",
            Preset::Spike => "spike",
        }
    }

    /// Builds the workload spec for a catalog and seed.
    pub fn spec(self, catalog: &AppCatalog, seed: u64) -> WorkloadSpec {
        let base = WorkloadSpec::evaluation(catalog, seed);
        match self {
            Preset::Evaluation => base,
            Preset::Saturated => WorkloadSpec {
                arrival: ArrivalProcess::Poisson { rate: 0.0080 },
                ..base
            },
            Preset::Capability => WorkloadSpec {
                arrival: ArrivalProcess::Poisson { rate: 0.00035 },
                sizes: SizeDist::PowerOfTwo {
                    max_exp: 6, // up to 64 of 128 nodes
                    decay: 0.85,
                    non_pow2: 0.1,
                },
                runtime: RuntimeDist {
                    median: 7_200.0,
                    sigma: 0.9,
                    min: 600.0,
                    max: 86_400.0,
                },
                estimates: EstimateModel {
                    mean_over_factor: 0.6,
                    ..EstimateModel::evaluation()
                },
                ..base
            },
            Preset::Capacity => WorkloadSpec {
                arrival: ArrivalProcess::DailyCycle {
                    base_rate: 0.060,
                    amplitude: 0.7,
                    period: 86_400.0,
                },
                sizes: SizeDist::PowerOfTwo {
                    max_exp: 3,
                    decay: 0.5,
                    non_pow2: 0.3,
                },
                runtime: RuntimeDist {
                    median: 600.0,
                    sigma: 1.0,
                    min: 30.0,
                    max: 14_400.0,
                },
                ..base
            },
            Preset::MemoryHeavy => {
                let weights: Vec<_> = catalog
                    .iter()
                    .map(|a| {
                        let w = match a.class {
                            nodeshare_perf::AppClass::MemoryBound => 6.0,
                            nodeshare_perf::AppClass::CommBound => 2.0,
                            _ => 1.0,
                        };
                        (a.id, w)
                    })
                    .collect();
                WorkloadSpec {
                    arrival: ArrivalProcess::Poisson { rate: 0.0080 },
                    mix: AppMix::new(weights),
                    ..base
                }
            }
            Preset::Spike => WorkloadSpec {
                // Swings between ~0.0005 jobs/s (lull: the machine
                // drains and sits largely idle) and ~0.0095 (burst:
                // ~1.2× the ~0.008 drain rate, so the queue genuinely
                // spikes) over an 8-hour wave. Both halves of the wave
                // leave slack a rigid policy cannot touch: stranded
                // idle nodes in the lull, a blocked head in the burst.
                arrival: ArrivalProcess::DailyCycle {
                    base_rate: 0.0050,
                    amplitude: 0.90,
                    period: 28_800.0,
                },
                ..base
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodeshare_perf::AppClass;

    #[test]
    fn names_roundtrip() {
        for p in Preset::ALL {
            assert_eq!(Preset::parse(p.name()), Some(p));
        }
        assert_eq!(Preset::parse("nonsense"), None);
    }

    #[test]
    fn presets_generate_valid_workloads() {
        let catalog = AppCatalog::trinity();
        for p in Preset::ALL {
            let mut spec = p.spec(&catalog, 9);
            spec.n_jobs = 120;
            let w = spec.generate(&catalog);
            assert_eq!(w.len(), 120, "{p:?}");
            assert!(w.total_work_node_seconds() > 0.0);
        }
    }

    #[test]
    fn capability_jobs_are_large_and_long() {
        let catalog = AppCatalog::trinity();
        let mut cap = Preset::Capability.spec(&catalog, 3);
        let mut htc = Preset::Capacity.spec(&catalog, 3);
        cap.n_jobs = 300;
        htc.n_jobs = 300;
        let cap_w = cap.generate(&catalog);
        let htc_w = htc.generate(&catalog);
        let mean = |w: &crate::job::Workload, f: fn(&crate::job::JobSpec) -> f64| {
            w.jobs().iter().map(f).sum::<f64>() / w.len() as f64
        };
        assert!(
            mean(&cap_w, |j| j.nodes as f64) > 2.0 * mean(&htc_w, |j| j.nodes as f64),
            "capability jobs should be larger"
        );
        assert!(
            mean(&cap_w, |j| j.runtime_exclusive) > 3.0 * mean(&htc_w, |j| j.runtime_exclusive),
            "capability jobs should be longer"
        );
    }

    #[test]
    fn memory_heavy_mix_is_dominated_by_memory_bound_apps() {
        let catalog = AppCatalog::trinity();
        let mut spec = Preset::MemoryHeavy.spec(&catalog, 5);
        spec.n_jobs = 600;
        let w = spec.generate(&catalog);
        let mem = w
            .jobs()
            .iter()
            .filter(|j| catalog.profile(j.app).class == AppClass::MemoryBound)
            .count();
        assert!(
            mem as f64 / w.len() as f64 > 0.55,
            "memory-bound fraction {}",
            mem as f64 / w.len() as f64
        );
    }
}
