//! The batch-job model: what a user submits and what the system knows.

use nodeshare_cluster::JobId;
use nodeshare_perf::AppId;
use serde::{Deserialize, Serialize};

/// Simulation time and durations, in seconds.
///
/// All nodeshare crates express time as `f64` seconds; zero is the start
/// of a simulation (or, for SWF traces, the trace epoch).
pub type Seconds = f64;

/// Width-malleability contract of a job: the range of node counts the
/// job can run at and what one reshape costs.
///
/// The default is [`Malleability::RIGID`] (`max_nodes == 0`), under which
/// every existing workload, trace, and campaign is bit-identical to the
/// rigid-only engine: no reshape may ever be issued for such a job. A
/// non-rigid contract promises the application can redistribute its data
/// across any width in `[min_nodes, max_nodes]`; the engine models the
/// redistribution as `reshape_cost` exclusive node-seconds charged
/// against the job's remaining work at each reshape.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Malleability {
    /// Smallest width the job can shrink to (≥ 1 when non-rigid).
    pub min_nodes: u32,
    /// Largest width the job can grow to; `0` means rigid.
    pub max_nodes: u32,
    /// Cost of one reshape in exclusive node-seconds, charged against
    /// the job's remaining work when the reshape is applied.
    pub reshape_cost: f32,
}

impl Malleability {
    /// The rigid (non-malleable) contract: no reshapes, ever.
    pub const RIGID: Malleability = Malleability {
        min_nodes: 0,
        max_nodes: 0,
        reshape_cost: 0.0,
    };

    /// A malleable contract over `[min_nodes, max_nodes]` with the given
    /// per-reshape cost in node-seconds.
    pub const fn range(min_nodes: u32, max_nodes: u32, reshape_cost: f32) -> Malleability {
        Malleability {
            min_nodes,
            max_nodes,
            reshape_cost,
        }
    }

    /// True for the rigid (default) contract.
    #[inline]
    pub fn is_rigid(&self) -> bool {
        self.max_nodes == 0
    }

    /// True when the contract admits running at width `w`.
    #[inline]
    pub fn admits(&self, w: u32) -> bool {
        !self.is_rigid() && self.min_nodes <= w && w <= self.max_nodes
    }
}

impl Default for Malleability {
    fn default() -> Self {
        Malleability::RIGID
    }
}

/// A job as submitted to the batch system.
///
/// The split between `runtime_exclusive` (ground truth, known only to the
/// simulation engine) and `walltime_estimate` (what the user told the
/// scheduler) mirrors real batch systems: backfill quality depends on the
/// estimate, job completion on the truth.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Unique, submission-ordered identifier.
    pub id: JobId,
    /// Which application the job runs (indexes an [`nodeshare_perf::AppCatalog`]).
    pub app: AppId,
    /// Number of nodes requested. Jobs are rigid: they start on exactly
    /// this many nodes.
    pub nodes: u32,
    /// Submission time.
    pub submit: Seconds,
    /// True runtime when running exclusively (one rank per core, whole
    /// node). Co-run slowdowns dilate this.
    pub runtime_exclusive: Seconds,
    /// User-provided walltime limit; schedulers plan with this, and jobs
    /// exceeding it are killed. Usually an over-estimate.
    pub walltime_estimate: Seconds,
    /// Memory the job needs on each of its nodes, MiB. Deliberately
    /// `u32` (caps at 4 TiB/node): streamed million-job campaigns keep
    /// queued specs resident, so the layout is audited — see the
    /// `spec_layout_stays_compact` test.
    pub mem_per_node_mib: u32,
    /// Whether the job may be co-allocated with another job (opt-in, as in
    /// the paper's deployment model).
    pub share_eligible: bool,
    /// Submitting user (for per-user statistics; not used by the
    /// strategies themselves).
    pub user: u32,
    /// Width-malleability contract; [`Malleability::RIGID`] (the
    /// default) for ordinary rigid jobs. Jobs always *start* at
    /// [`JobSpec::nodes`]; a non-rigid contract only permits reshapes
    /// while running.
    pub malleable: Malleability,
}

impl JobSpec {
    /// Total useful work of the job in *exclusive node-seconds*: the
    /// currency of the computational-efficiency metric.
    #[inline]
    pub fn work_node_seconds(&self) -> f64 {
        self.nodes as f64 * self.runtime_exclusive
    }

    /// Work in exclusive core-seconds given the cluster's cores per node.
    #[inline]
    pub fn work_core_seconds(&self, cores_per_node: u32) -> f64 {
        self.work_node_seconds() * cores_per_node as f64
    }

    /// Validates spec ranges.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes == 0 {
            return Err(format!("{}: must request at least one node", self.id));
        }
        if self.runtime_exclusive <= 0.0 || self.runtime_exclusive.is_nan() {
            return Err(format!("{}: runtime must be positive", self.id));
        }
        if self.walltime_estimate <= 0.0 || self.walltime_estimate.is_nan() {
            return Err(format!("{}: walltime estimate must be positive", self.id));
        }
        if self.submit < 0.0 || self.submit.is_nan() {
            return Err(format!("{}: submit time must be non-negative", self.id));
        }
        let m = &self.malleable;
        if !m.is_rigid() {
            if m.min_nodes == 0 || m.min_nodes > self.nodes || self.nodes > m.max_nodes {
                return Err(format!(
                    "{}: malleable range [{}, {}] must bracket the requested width {}",
                    self.id, m.min_nodes, m.max_nodes, self.nodes
                ));
            }
            if !m.reshape_cost.is_finite() || m.reshape_cost < 0.0 {
                return Err(format!(
                    "{}: reshape cost must be finite and non-negative",
                    self.id
                ));
            }
        }
        Ok(())
    }
}

/// A complete workload: jobs sorted by submission time.
#[derive(Clone, Debug, PartialEq, Default, Serialize, Deserialize)]
pub struct Workload {
    jobs: Vec<JobSpec>,
}

impl Workload {
    /// Builds a workload, sorting by `(submit, id)` and validating every job.
    pub fn new(jobs: Vec<JobSpec>) -> Result<Self, String> {
        let capacity = jobs.len();
        Self::with_dedup_capacity(jobs, capacity)
    }

    /// [`Workload::new`] with an explicit initial capacity for the
    /// duplicate-id set. The set is membership-only (see the D1
    /// annotation below), so its bucket layout must never matter; the
    /// differential suite calls this with perturbed capacities and
    /// shuffled input orders to prove campaign artifacts stay
    /// byte-identical.
    pub fn with_dedup_capacity(mut jobs: Vec<JobSpec>, capacity: usize) -> Result<Self, String> {
        for j in &jobs {
            j.validate()?;
        }
        jobs.sort_by(|a, b| a.submit.total_cmp(&b.submit).then(a.id.cmp(&b.id)));
        // Ids must be unique.
        // detlint: allow(D1, duplicate-id guard; membership checks only, never iterated)
        let mut seen = std::collections::HashSet::with_capacity(capacity);
        for j in &jobs {
            if !seen.insert(j.id) {
                return Err(format!("duplicate {}", j.id));
            }
        }
        Ok(Workload { jobs })
    }

    /// Jobs in submission order.
    #[inline]
    pub fn jobs(&self) -> &[JobSpec] {
        &self.jobs
    }

    /// Number of jobs.
    #[inline]
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True when empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Total work in exclusive node-seconds.
    pub fn total_work_node_seconds(&self) -> f64 {
        self.jobs.iter().map(JobSpec::work_node_seconds).sum()
    }

    /// Time span between first and last submission.
    pub fn submit_span(&self) -> Seconds {
        match (self.jobs.first(), self.jobs.last()) {
            (Some(f), Some(l)) => l.submit - f.submit,
            _ => 0.0,
        }
    }

    /// Fraction of jobs that opted into sharing.
    pub fn share_fraction(&self) -> f64 {
        if self.jobs.is_empty() {
            return 0.0;
        }
        self.jobs.iter().filter(|j| j.share_eligible).count() as f64 / self.jobs.len() as f64
    }

    /// Map over jobs producing a derived workload (used by sweeps, e.g. to
    /// rescale arrival times or toggle share eligibility).
    pub fn map_jobs(&self, f: impl FnMut(JobSpec) -> JobSpec) -> Result<Self, String> {
        Workload::new(self.jobs.iter().cloned().map(f).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: u64, submit: Seconds) -> JobSpec {
        JobSpec {
            id: JobId(id),
            app: AppId(0),
            nodes: 2,
            submit,
            runtime_exclusive: 100.0,
            walltime_estimate: 200.0,
            mem_per_node_mib: 1024,
            share_eligible: true,
            user: 0,
            malleable: Malleability::RIGID,
        }
    }

    #[test]
    fn spec_layout_stays_compact() {
        // Streamed runs hold only queued + in-flight specs, but a
        // saturated million-job campaign can still queue hundreds of
        // thousands. Field-width audit: id 8 + times 3×8 + mem 4 +
        // nodes 4 + user 4 + app 1 + share 1 = 46, plus the malleability
        // contract 2×4 + 4 = 12 → 58, padded to 64.
        assert!(
            std::mem::size_of::<JobSpec>() <= 64,
            "JobSpec grew to {} bytes — audit field widths",
            std::mem::size_of::<JobSpec>()
        );
    }

    #[test]
    fn work_accounting() {
        let j = job(1, 0.0);
        assert_eq!(j.work_node_seconds(), 200.0);
        assert_eq!(j.work_core_seconds(32), 6400.0);
    }

    #[test]
    fn workload_sorts_by_submit_then_id() {
        let w = Workload::new(vec![job(2, 50.0), job(1, 50.0), job(3, 10.0)]).unwrap();
        let ids: Vec<u64> = w.jobs().iter().map(|j| j.id.0).collect();
        assert_eq!(ids, vec![3, 1, 2]);
        assert_eq!(w.len(), 3);
        assert_eq!(w.submit_span(), 40.0);
    }

    #[test]
    fn duplicate_ids_rejected() {
        assert!(Workload::new(vec![job(1, 0.0), job(1, 5.0)]).is_err());
    }

    #[test]
    fn invalid_jobs_rejected() {
        let mut j = job(1, 0.0);
        j.nodes = 0;
        assert!(Workload::new(vec![j]).is_err());
        let mut j = job(1, 0.0);
        j.runtime_exclusive = 0.0;
        assert!(Workload::new(vec![j]).is_err());
        let mut j = job(1, 0.0);
        j.walltime_estimate = -1.0;
        assert!(Workload::new(vec![j]).is_err());
        let mut j = job(1, 0.0);
        j.submit = -0.5;
        assert!(Workload::new(vec![j]).is_err());
    }

    #[test]
    fn malleability_contract_is_validated() {
        // Rigid default stays valid and reports rigid.
        let j = job(1, 0.0);
        assert!(j.malleable.is_rigid());
        assert!(!j.malleable.admits(j.nodes));
        assert!(j.validate().is_ok());

        // A proper range bracketing the requested width is accepted.
        let mut j = job(1, 0.0);
        j.malleable = Malleability::range(1, 4, 30.0);
        assert!(j.validate().is_ok());
        assert!(j.malleable.admits(1) && j.malleable.admits(4));
        assert!(!j.malleable.admits(5));

        // min of zero, range not bracketing `nodes`, and non-finite
        // costs are all rejected.
        let mut j = job(1, 0.0);
        j.malleable = Malleability::range(0, 4, 1.0);
        assert!(j.validate().is_err());
        let mut j = job(1, 0.0); // nodes = 2
        j.malleable = Malleability::range(3, 4, 1.0);
        assert!(j.validate().is_err());
        let mut j = job(1, 0.0);
        j.malleable = Malleability::range(1, 1, 1.0);
        assert!(j.validate().is_err());
        let mut j = job(1, 0.0);
        j.malleable = Malleability::range(1, 4, f32::NAN);
        assert!(j.validate().is_err());
        let mut j = job(1, 0.0);
        j.malleable = Malleability::range(1, 4, -1.0);
        assert!(j.validate().is_err());
    }

    #[test]
    fn aggregates() {
        let mut a = job(1, 0.0);
        a.share_eligible = false;
        let w = Workload::new(vec![a, job(2, 10.0)]).unwrap();
        assert_eq!(w.total_work_node_seconds(), 400.0);
        assert!((w.share_fraction() - 0.5).abs() < 1e-12);
        assert!(!w.is_empty());
    }

    #[test]
    fn map_jobs_rescales() {
        let w = Workload::new(vec![job(1, 10.0), job(2, 20.0)]).unwrap();
        let w2 = w
            .map_jobs(|mut j| {
                j.submit *= 2.0;
                j
            })
            .unwrap();
        assert_eq!(w2.jobs()[1].submit, 40.0);
    }
}
