//! Job arrival processes.

use crate::dist::exponential;
use crate::job::Seconds;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How jobs arrive over time.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Homogeneous Poisson process with `rate` jobs per second.
    Poisson {
        /// Mean arrivals per second.
        rate: f64,
    },
    /// Non-homogeneous Poisson with a sinusoidal daily cycle:
    /// `λ(t) = base_rate · (1 + amplitude · sin(2πt / period))`,
    /// sampled by thinning. Models the day/night submission rhythm of
    /// production machines.
    DailyCycle {
        /// Mean arrivals per second averaged over a period.
        base_rate: f64,
        /// Relative swing in `[0, 1)`.
        amplitude: f64,
        /// Cycle length in seconds (86 400 for a day).
        period: Seconds,
    },
    /// Deterministic arrivals every `interarrival` seconds (useful in
    /// tests and for saturation studies).
    Uniform {
        /// Fixed gap between consecutive arrivals.
        interarrival: Seconds,
    },
    /// Every job arrives at time zero: a pre-filled queue, the classic
    /// "static backlog" configuration for makespan comparisons.
    Batch,
}

impl ArrivalProcess {
    /// Average arrival rate in jobs/second (0 for [`ArrivalProcess::Batch`]).
    pub fn mean_rate(&self) -> f64 {
        match self {
            ArrivalProcess::Poisson { rate } => *rate,
            ArrivalProcess::DailyCycle { base_rate, .. } => *base_rate,
            ArrivalProcess::Uniform { interarrival } => 1.0 / interarrival,
            ArrivalProcess::Batch => 0.0,
        }
    }

    /// Samples the next arrival strictly after `now`.
    pub fn next_after<R: Rng + ?Sized>(&self, rng: &mut R, now: Seconds) -> Seconds {
        match self {
            ArrivalProcess::Poisson { rate } => now + exponential(rng, *rate),
            ArrivalProcess::DailyCycle {
                base_rate,
                amplitude,
                period,
            } => {
                assert!(
                    (0.0..1.0).contains(amplitude),
                    "amplitude must be in [0, 1)"
                );
                // Thinning against the envelope rate λ_max.
                let lambda_max = base_rate * (1.0 + amplitude);
                let mut t = now;
                loop {
                    t += exponential(rng, lambda_max);
                    let lambda_t =
                        base_rate * (1.0 + amplitude * (std::f64::consts::TAU * t / period).sin());
                    if rng.random::<f64>() * lambda_max <= lambda_t {
                        return t;
                    }
                }
            }
            ArrivalProcess::Uniform { interarrival } => now + interarrival,
            ArrivalProcess::Batch => now,
        }
    }

    /// Samples `n` arrival times starting from time zero.
    pub fn sample_times<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<Seconds> {
        let mut out = Vec::with_capacity(n);
        let mut t = 0.0;
        for _ in 0..n {
            t = self.next_after(rng, t);
            out.push(t);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(7)
    }

    #[test]
    fn poisson_rate_converges() {
        let mut r = rng();
        let times = ArrivalProcess::Poisson { rate: 0.2 }.sample_times(&mut r, 5_000);
        let span = times.last().unwrap() - times[0];
        let rate = (times.len() - 1) as f64 / span;
        assert!((rate / 0.2 - 1.0).abs() < 0.05, "rate {rate}");
    }

    #[test]
    fn arrivals_are_monotone() {
        let mut r = rng();
        for proc in [
            ArrivalProcess::Poisson { rate: 1.0 },
            ArrivalProcess::DailyCycle {
                base_rate: 1.0,
                amplitude: 0.5,
                period: 86_400.0,
            },
            ArrivalProcess::Uniform { interarrival: 3.0 },
        ] {
            let times = proc.sample_times(&mut r, 500);
            assert!(times.windows(2).all(|w| w[1] >= w[0]), "{proc:?}");
            assert!(times[0] >= 0.0);
        }
    }

    #[test]
    fn batch_arrivals_are_all_zero() {
        let mut r = rng();
        let times = ArrivalProcess::Batch.sample_times(&mut r, 10);
        assert!(times.iter().all(|&t| t == 0.0));
        assert_eq!(ArrivalProcess::Batch.mean_rate(), 0.0);
    }

    #[test]
    fn daily_cycle_mean_rate_converges() {
        let mut r = rng();
        let proc = ArrivalProcess::DailyCycle {
            base_rate: 0.1,
            amplitude: 0.8,
            period: 1_000.0,
        };
        let times = proc.sample_times(&mut r, 20_000);
        let span = times.last().unwrap() - times[0];
        let rate = (times.len() - 1) as f64 / span;
        assert!((rate / 0.1 - 1.0).abs() < 0.05, "rate {rate}");
        assert_eq!(proc.mean_rate(), 0.1);
    }

    #[test]
    fn uniform_interarrival_is_exact() {
        let mut r = rng();
        let times = ArrivalProcess::Uniform { interarrival: 5.0 }.sample_times(&mut r, 4);
        assert_eq!(times, vec![5.0, 10.0, 15.0, 20.0]);
        assert!((ArrivalProcess::Uniform { interarrival: 5.0 }.mean_rate() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn daily_cycle_density_varies_with_phase() {
        // More arrivals land in the high-rate half-period than the low one.
        let mut r = rng();
        let period = 1_000.0;
        let proc = ArrivalProcess::DailyCycle {
            base_rate: 0.5,
            amplitude: 0.9,
            period,
        };
        let times = proc.sample_times(&mut r, 30_000);
        let (mut high, mut low) = (0u32, 0u32);
        for t in times {
            let phase = (t / period).fract();
            if phase < 0.5 {
                high += 1; // sin positive half: elevated rate
            } else {
                low += 1;
            }
        }
        assert!(
            high as f64 > low as f64 * 1.5,
            "high {high} low {low}: cycle not visible"
        );
    }
}
