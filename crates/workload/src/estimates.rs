//! Walltime-estimate model: how badly users over-estimate.
//!
//! Backfill quality is famously sensitive to estimate accuracy, so the F8
//! experiment sweeps this model's over-estimation factor. The default
//! follows the stylized facts from trace studies: users multiply the true
//! runtime by a broad factor and then round up to a "round" wall-clock
//! value (15-minute granularity), and never exceed the queue limit.

use crate::dist::{clamp, exponential};
use crate::job::Seconds;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Model producing a user walltime estimate from the true runtime.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EstimateModel {
    /// Mean multiplicative padding beyond 1× (estimate ≈ runtime × (1 + Exp)).
    /// `0.0` yields perfect estimates.
    pub mean_over_factor: f64,
    /// Estimates are rounded *up* to a multiple of this many seconds
    /// (0 disables rounding).
    pub round_to: Seconds,
    /// Hard ceiling (queue limit).
    pub max: Seconds,
}

impl EstimateModel {
    /// The canonical evaluation model: ~2× mean over-estimate, 15-minute
    /// rounding, 12-hour queue limit.
    pub fn evaluation() -> Self {
        EstimateModel {
            mean_over_factor: 1.0,
            round_to: 900.0,
            max: 43_200.0,
        }
    }

    /// A perfect-information model (estimate == runtime): the upper bound
    /// backfill quality can reach.
    pub fn perfect() -> Self {
        EstimateModel {
            mean_over_factor: 0.0,
            round_to: 0.0,
            max: f64::INFINITY,
        }
    }

    /// Draws an estimate for a job with true runtime `runtime`.
    ///
    /// Estimates never fall below the true runtime — jobs that exceed their
    /// walltime get killed, and the workload model assumes users learned
    /// that lesson.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, runtime: Seconds) -> Seconds {
        let factor = if self.mean_over_factor > 0.0 {
            1.0 + exponential(rng, 1.0 / self.mean_over_factor)
        } else {
            1.0
        };
        let mut est = runtime * factor;
        if self.round_to > 0.0 {
            est = (est / self.round_to).ceil() * self.round_to;
        }
        clamp(est, runtime, self.max.max(runtime))
    }
}

impl Default for EstimateModel {
    fn default() -> Self {
        EstimateModel::evaluation()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(3)
    }

    #[test]
    fn estimates_never_undershoot_runtime() {
        let mut r = rng();
        let m = EstimateModel::evaluation();
        for _ in 0..5_000 {
            let runtime = 100.0 + r.random::<f64>() * 10_000.0;
            let est = m.sample(&mut r, runtime);
            assert!(est >= runtime);
        }
    }

    #[test]
    fn estimates_round_up_to_granularity() {
        let mut r = rng();
        let m = EstimateModel::evaluation();
        for _ in 0..1_000 {
            let est = m.sample(&mut r, 500.0);
            if est < m.max {
                assert!((est / m.round_to).fract().abs() < 1e-9, "est {est}");
            }
        }
    }

    #[test]
    fn mean_over_factor_converges() {
        let mut r = rng();
        let m = EstimateModel {
            mean_over_factor: 1.5,
            round_to: 0.0,
            max: f64::INFINITY,
        };
        let runtime = 1_000.0;
        let n = 30_000;
        let mean: f64 = (0..n).map(|_| m.sample(&mut r, runtime)).sum::<f64>() / n as f64;
        // E[estimate] = runtime × (1 + mean_over_factor)
        assert!((mean / (runtime * 2.5) - 1.0).abs() < 0.03, "mean {mean}");
    }

    #[test]
    fn perfect_model_is_exact() {
        let mut r = rng();
        let m = EstimateModel::perfect();
        assert_eq!(m.sample(&mut r, 1234.5), 1234.5);
    }

    #[test]
    fn ceiling_is_enforced_but_never_below_runtime() {
        let mut r = rng();
        let m = EstimateModel {
            mean_over_factor: 5.0,
            round_to: 900.0,
            max: 3_600.0,
        };
        for _ in 0..1_000 {
            assert!(m.sample(&mut r, 1_000.0) <= 3_600.0);
        }
        // A runtime above the cap still yields estimate ≥ runtime.
        assert!(m.sample(&mut r, 5_000.0) >= 5_000.0);
    }
}
