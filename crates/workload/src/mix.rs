//! Application mixes: which mini-app each generated job runs.

use crate::dist::weighted_index;
use nodeshare_perf::{AppCatalog, AppId};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A weighted mixture over the applications of a catalog.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AppMix {
    /// `(app, weight)` pairs; weights need not be normalized.
    entries: Vec<(AppId, f64)>,
}

impl AppMix {
    /// Builds a mix from explicit weights.
    ///
    /// # Panics
    /// Panics on empty input, negative weights, or an all-zero total —
    /// mixes are built from static experiment configuration.
    pub fn new(entries: Vec<(AppId, f64)>) -> Self {
        assert!(!entries.is_empty(), "mix must contain at least one app");
        assert!(
            entries.iter().all(|&(_, w)| w >= 0.0),
            "weights must be non-negative"
        );
        assert!(
            entries.iter().map(|&(_, w)| w).sum::<f64>() > 0.0,
            "weights must not all be zero"
        );
        AppMix { entries }
    }

    /// Uniform mix over every app in the catalog — the canonical
    /// evaluation mix (the paper runs a balanced blend of Trinity
    /// mini-apps).
    pub fn uniform(catalog: &AppCatalog) -> Self {
        AppMix::new(catalog.ids().map(|id| (id, 1.0)).collect())
    }

    /// A mix containing a single app.
    pub fn single(app: AppId) -> Self {
        AppMix::new(vec![(app, 1.0)])
    }

    /// The `(app, weight)` entries.
    pub fn entries(&self) -> &[(AppId, f64)] {
        &self.entries
    }

    /// Samples one application.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> AppId {
        let weights: Vec<f64> = self.entries.iter().map(|&(_, w)| w).collect();
        self.entries[weighted_index(rng, &weights)].0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn uniform_mix_covers_catalog() {
        let catalog = AppCatalog::trinity();
        let mix = AppMix::uniform(&catalog);
        let mut r = ChaCha8Rng::seed_from_u64(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..2_000 {
            seen.insert(mix.sample(&mut r));
        }
        assert_eq!(seen.len(), catalog.len());
    }

    #[test]
    fn single_mix_is_constant() {
        let mix = AppMix::single(AppId(3));
        let mut r = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..50 {
            assert_eq!(mix.sample(&mut r), AppId(3));
        }
        assert_eq!(mix.entries().len(), 1);
    }

    #[test]
    fn weights_bias_sampling() {
        let mix = AppMix::new(vec![(AppId(0), 9.0), (AppId(1), 1.0)]);
        let mut r = ChaCha8Rng::seed_from_u64(1);
        let zero = (0..10_000)
            .filter(|_| mix.sample(&mut r) == AppId(0))
            .count();
        assert!(zero > 8_500 && zero < 9_500, "count {zero}");
    }

    #[test]
    #[should_panic(expected = "at least one app")]
    fn empty_mix_panics() {
        AppMix::new(vec![]);
    }
}
