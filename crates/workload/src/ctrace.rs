//! Cluster-trace ingestion: Google/Alibaba-style CSV traces streamed
//! line by line through the [`JobSource`] contract.
//!
//! Two dialects are supported:
//!
//! * [`TraceFormat::AlibabaBatch`] — the `batch_task` table of the
//!   Alibaba cluster-trace-v2018 release:
//!   `task_name,instance_num,job_name,task_type,status,start_time,end_time,plan_cpu,plan_mem`.
//!   Only `Terminated` tasks with a positive duration, instance count,
//!   and CPU plan are usable. `plan_cpu` is in percent of one core
//!   (100 = 1 core) per instance; `plan_mem` is percent of one node's
//!   memory.
//! * [`TraceFormat::GoogleJobs`] — a per-job digest of the Google
//!   cluster-data releases:
//!   `job_id,submit_s,duration_s,cpus,memory,scheduling_class,user`.
//!   The raw Google `task_events` table needs a SUBMIT/FINISH self-join
//!   that is not stream-friendly; the conventional preprocessing step
//!   emits exactly this digest. `memory` ≤ 1.0 is read as a fraction of
//!   node memory (the trace's normalized units), larger values as MiB.
//!
//! Mapping onto the simulator's job model: total requested cores become
//! `ceil(cores / cores_per_node)` rigid nodes, the task duration is the
//! true runtime, the walltime estimate is `runtime × walltime_factor`
//! (cluster traces carry no user estimate), and the scheduling
//! class/task type picks an application profile modulo the catalog —
//! the same stable mapping the SWF importer uses for executable ids.
//!
//! Times are rebased so the first usable row lands at `reorder_window`
//! seconds (every later row within the window stays ≥ 0), and rows are
//! released in `(submit, file-order)` via a [`ReorderBuffer`] — a row
//! more than `reorder_window` seconds behind the running maximum is an
//! error naming the line.

use crate::job::{JobSpec, Seconds, Workload};
use crate::source::{JobSource, ReorderBuffer, SourceError};
use nodeshare_cluster::JobId;
use nodeshare_perf::{AppCatalog, AppId};
use serde::{Deserialize, Serialize};
use std::io::BufRead;

/// Which cluster-trace dialect a file is in.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceFormat {
    /// Alibaba cluster-trace-v2018 `batch_task` CSV.
    AlibabaBatch,
    /// Google cluster-data per-job digest CSV.
    GoogleJobs,
}

impl TraceFormat {
    /// Parses a user-facing format name (`alibaba` / `google`).
    pub fn parse(s: &str) -> Option<TraceFormat> {
        match s.to_ascii_lowercase().as_str() {
            "alibaba" | "alibaba-batch" => Some(TraceFormat::AlibabaBatch),
            "google" | "google-jobs" => Some(TraceFormat::GoogleJobs),
            _ => None,
        }
    }
}

/// Options controlling cluster-trace → job conversion.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CTraceOptions {
    /// Cores per node of the target cluster.
    pub cores_per_node: u32,
    /// Memory capacity of one node, MiB — scales the traces' normalized
    /// memory requests.
    pub node_mem_mib: u32,
    /// Memory charged per node when the trace gives none, MiB.
    pub default_mem_per_node_mib: u32,
    /// Walltime estimate as a multiple of the true runtime (cluster
    /// traces carry no user estimates; 2× mirrors the over-estimation
    /// literature).
    pub walltime_factor: f64,
    /// Whether imported jobs opt into sharing.
    pub share_eligible: bool,
    /// Seconds of submit-order jitter tolerated (and the rebased submit
    /// of the first row).
    pub reorder_window: Seconds,
}

impl Default for CTraceOptions {
    fn default() -> Self {
        CTraceOptions {
            cores_per_node: 32,
            node_mem_mib: 4 * 1024,
            default_mem_per_node_mib: 1024,
            walltime_factor: 2.0,
            share_eligible: true,
            reorder_window: 60.0,
        }
    }
}

/// FNV-1a — stable hash for deriving user ids from trace-side names.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One usable trace row, normalized across dialects.
struct RawRow {
    submit: Seconds,
    runtime: Seconds,
    /// Total cores over all instances/tasks.
    cores: f64,
    /// Per-node memory, MiB (already scaled).
    mem_mib: u32,
    /// Scheduling class / task type, app-mapped modulo the catalog.
    class: u64,
    user: u32,
}

/// Streams a cluster trace through the [`JobSource`] contract.
pub struct CTraceSource<'c, R> {
    reader: R,
    format: TraceFormat,
    catalog: &'c AppCatalog,
    opts: CTraceOptions,
    rb: ReorderBuffer,
    buf: String,
    lineno: usize,
    next_id: u64,
    skipped: usize,
    /// Trace epoch: first usable submit minus the reorder window.
    t0: Option<Seconds>,
    eof: bool,
}

impl<'c, R: BufRead> CTraceSource<'c, R> {
    /// A streaming source over `reader`.
    pub fn new(
        reader: R,
        format: TraceFormat,
        catalog: &'c AppCatalog,
        opts: CTraceOptions,
    ) -> Self {
        // A bad window is reported by `validate()` on the first chunk;
        // feed the buffer a benign stand-in so construction can't panic.
        let window = if opts.reorder_window.is_finite() && opts.reorder_window >= 0.0 {
            opts.reorder_window
        } else {
            0.0
        };
        CTraceSource {
            reader,
            format,
            catalog,
            opts,
            rb: ReorderBuffer::new(window),
            buf: String::new(),
            lineno: 0,
            next_id: 0,
            skipped: 0,
            t0: None,
            eof: false,
        }
    }

    /// Rows skipped so far (filtered status, non-positive duration or
    /// CPU plan, header lines).
    pub fn skipped(&self) -> usize {
        self.skipped
    }

    fn err(&self, msg: impl Into<String>) -> SourceError {
        SourceError::at_line(self.lineno, msg.into())
    }

    /// Parses a numeric CSV field; empty fields are `None`, anything
    /// non-numeric is an error.
    fn num(&self, fields: &[&str], idx: usize, name: &str) -> Result<Option<f64>, SourceError> {
        let Some(tok) = fields.get(idx).map(|t| t.trim()) else {
            return Err(self.err(format!("missing field {} ({name})", idx + 1)));
        };
        if tok.is_empty() {
            return Ok(None);
        }
        let v = tok
            .parse::<f64>()
            .map_err(|_| self.err(format!("field {} ({name}): cannot parse {tok:?}", idx + 1)))?;
        // `str::parse` accepts "NaN"/"inf"; a non-finite value would
        // sail through the `< 0.0`-style row filters and poison submits
        // and runtimes downstream, so reject it here with the line.
        if !v.is_finite() {
            return Err(self.err(format!(
                "field {} ({name}): non-finite value {tok:?}",
                idx + 1
            )));
        }
        Ok(Some(v))
    }

    /// One line → a normalized row, `Ok(None)` for filtered rows.
    fn parse_row(&mut self) -> Result<Option<RawRow>, SourceError> {
        let line = self.buf.trim();
        if line.is_empty() || line.starts_with('#') {
            return Ok(None);
        }
        let fields: Vec<&str> = line.split(',').collect();
        match self.format {
            TraceFormat::AlibabaBatch => {
                if fields.len() < 9 {
                    return Err(self.err(format!(
                        "expected 9 batch_task columns, found {}",
                        fields.len()
                    )));
                }
                let status = fields[4].trim();
                let instance_num = self.num(&fields, 1, "instance_num")?.unwrap_or(0.0);
                let start = self.num(&fields, 5, "start_time")?.unwrap_or(-1.0);
                let end = self.num(&fields, 6, "end_time")?.unwrap_or(-1.0);
                let plan_cpu = self.num(&fields, 7, "plan_cpu")?.unwrap_or(0.0);
                let plan_mem = self.num(&fields, 8, "plan_mem")?.unwrap_or(0.0);
                let task_type = self.num(&fields, 3, "task_type")?.unwrap_or(0.0);
                if status != "Terminated"
                    || instance_num < 1.0
                    || plan_cpu <= 0.0
                    || start < 0.0
                    || end <= start
                {
                    self.skipped += 1;
                    return Ok(None);
                }
                let mem_mib = if plan_mem > 0.0 {
                    ((plan_mem / 100.0) * self.opts.node_mem_mib as f64).ceil() as u32
                } else {
                    self.opts.default_mem_per_node_mib
                };
                Ok(Some(RawRow {
                    submit: start,
                    runtime: end - start,
                    // plan_cpu is percent of a core, per instance.
                    cores: instance_num * plan_cpu / 100.0,
                    mem_mib: mem_mib.max(1),
                    class: task_type.max(0.0) as u64,
                    user: (fnv1a(fields[2].trim()) % 1024) as u32,
                }))
            }
            TraceFormat::GoogleJobs => {
                if fields.len() < 7 {
                    return Err(self.err(format!(
                        "expected 7 job-digest columns, found {}",
                        fields.len()
                    )));
                }
                // A leading header line is conventional; skip it.
                if self.lineno == 1 && fields[1].trim().parse::<f64>().is_err() {
                    self.skipped += 1;
                    return Ok(None);
                }
                let submit = self.num(&fields, 1, "submit_s")?.unwrap_or(-1.0);
                let duration = self.num(&fields, 2, "duration_s")?.unwrap_or(0.0);
                let cpus = self.num(&fields, 3, "cpus")?.unwrap_or(0.0);
                let memory = self.num(&fields, 4, "memory")?.unwrap_or(0.0);
                let class = self.num(&fields, 5, "scheduling_class")?.unwrap_or(0.0);
                if submit < 0.0 || duration <= 0.0 || cpus <= 0.0 {
                    self.skipped += 1;
                    return Ok(None);
                }
                let mem_mib = if memory > 1.0 {
                    memory.ceil() as u32
                } else if memory > 0.0 {
                    (memory * self.opts.node_mem_mib as f64).ceil() as u32
                } else {
                    self.opts.default_mem_per_node_mib
                };
                Ok(Some(RawRow {
                    submit,
                    runtime: duration,
                    cores: cpus,
                    mem_mib: mem_mib.max(1),
                    class: class.max(0.0) as u64,
                    user: (fnv1a(fields[6].trim()) % 1024) as u32,
                }))
            }
        }
    }

    fn row_to_spec(&mut self, row: RawRow) -> JobSpec {
        let t0 = *self.t0.get_or_insert(row.submit - self.opts.reorder_window);
        let nodes = (row.cores / self.opts.cores_per_node as f64)
            .ceil()
            .max(1.0) as u32;
        let app = AppId((row.class as usize % self.catalog.len()) as u8);
        let id = JobId(self.next_id);
        self.next_id += 1;
        JobSpec {
            id,
            app,
            nodes,
            submit: row.submit - t0,
            malleable: Default::default(),
            runtime_exclusive: row.runtime,
            walltime_estimate: row.runtime * self.opts.walltime_factor,
            mem_per_node_mib: row.mem_mib,
            share_eligible: self.opts.share_eligible,
            user: row.user,
        }
    }

    /// Rejects option/catalog combinations that would divide by zero or
    /// corrupt derived fields once rows start flowing. Checked up front
    /// (before the first line is read) so a misconfiguration is one
    /// clear error, not a panic mid-trace.
    fn validate(&self) -> Result<(), SourceError> {
        if self.catalog.is_empty() {
            return Err(SourceError::new(
                "cluster-trace import needs a non-empty app catalog (class is mapped modulo it)",
            ));
        }
        if self.opts.cores_per_node == 0 {
            return Err(SourceError::new("cores_per_node must be at least 1"));
        }
        if !self.opts.walltime_factor.is_finite() || self.opts.walltime_factor < 1.0 {
            return Err(SourceError::new(format!(
                "walltime_factor must be finite and >= 1, got {}",
                self.opts.walltime_factor
            )));
        }
        if !self.opts.reorder_window.is_finite() || self.opts.reorder_window < 0.0 {
            return Err(SourceError::new(format!(
                "reorder_window must be finite and >= 0, got {}",
                self.opts.reorder_window
            )));
        }
        Ok(())
    }

    fn read_line(&mut self) -> Result<bool, SourceError> {
        self.buf.clear();
        let n = self
            .reader
            .read_line(&mut self.buf)
            .map_err(|e| SourceError::at_line(self.lineno + 1, format!("read failed: {e}")))?;
        if n == 0 {
            return Ok(false);
        }
        self.lineno += 1;
        Ok(true)
    }
}

impl<R: BufRead> JobSource for CTraceSource<'_, R> {
    fn next_chunk(&mut self, out: &mut Vec<JobSpec>) -> Result<Option<Seconds>, SourceError> {
        self.validate()?;
        while !self.eof {
            for _ in 0..crate::swf::STREAM_BATCH_LINES {
                if !self.read_line()? {
                    self.eof = true;
                    break;
                }
                if let Some(row) = self.parse_row()? {
                    let spec = self.row_to_spec(row);
                    let (line, submit) = (self.lineno, spec.submit);
                    self.rb.push(spec).map_err(|lateness| {
                        SourceError::at_line(
                            line,
                            format!(
                                "submit goes back {lateness} s beyond the {} s reorder \
                                 window (rebased submit {submit}) — pass a larger window",
                                self.opts.reorder_window
                            ),
                        )
                    })?;
                }
            }
            if self.eof {
                break;
            }
            if self.rb.drain_ready(out) > 0 {
                return Ok(Some(self.rb.horizon()));
            }
        }
        self.rb.drain_all(out);
        Ok(None)
    }
}

/// Materializes a whole trace (tests, stats, `--materialize` paths).
/// Returns the workload and the skipped-row count.
pub fn read_to_workload(
    text: &str,
    format: TraceFormat,
    catalog: &AppCatalog,
    opts: CTraceOptions,
) -> Result<(Workload, usize), SourceError> {
    let mut src = CTraceSource::new(text.as_bytes(), format, catalog, opts);
    let workload = crate::source::collect_source(&mut src)?;
    Ok((workload, src.skipped()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::collect_source;

    const ALIBABA: &str = "\
task_M1,4,j_1,1,Terminated,100,400,50,1.5
task_M2,1,j_1,2,Terminated,110,200,100,
task_F1,2,j_2,1,Failed,120,500,100,2.0
task_M3,64,j_3,3,Terminated,130,1930,100,0.8
task_Z0,2,j_4,1,Terminated,140,140,100,1.0
";

    #[test]
    fn alibaba_rows_map_onto_the_job_model() {
        let catalog = AppCatalog::trinity();
        let opts = CTraceOptions::default();
        let (w, skipped) =
            read_to_workload(ALIBABA, TraceFormat::AlibabaBatch, &catalog, opts).unwrap();
        // Failed row and zero-duration row are filtered.
        assert_eq!(w.len(), 3);
        assert_eq!(skipped, 2);
        let j = &w.jobs()[0];
        // First usable row rebases to the reorder window.
        assert_eq!(j.submit, opts.reorder_window);
        assert_eq!(j.runtime_exclusive, 300.0);
        assert_eq!(j.walltime_estimate, 600.0);
        // 4 instances × 50% of a core = 2 cores → 1 node at 32 cores.
        assert_eq!(j.nodes, 1);
        // 1.5% of 4096 MiB, ceiled.
        assert_eq!(j.mem_per_node_mib, 62);
        // 64 instances × 1 core = 64 cores → 2 nodes.
        let wide = w.jobs().iter().find(|j| j.nodes == 2).expect("wide job");
        assert_eq!(wide.runtime_exclusive, 1800.0);
        // Same job name hashes to the same user.
        assert_eq!(w.jobs()[0].user, w.jobs()[1].user);
    }

    #[test]
    fn alibaba_empty_plan_mem_takes_the_default() {
        let catalog = AppCatalog::trinity();
        let opts = CTraceOptions::default();
        let (w, _) = read_to_workload(ALIBABA, TraceFormat::AlibabaBatch, &catalog, opts).unwrap();
        let j = w
            .jobs()
            .iter()
            .find(|j| j.runtime_exclusive == 90.0)
            .unwrap();
        assert_eq!(j.mem_per_node_mib, opts.default_mem_per_node_mib);
    }

    #[test]
    fn google_digest_maps_with_header_and_normalized_memory() {
        let catalog = AppCatalog::trinity();
        let text = "\
job_id,submit_s,duration_s,cpus,memory,scheduling_class,user
6253771429,1000,3600,64,0.5,2,usr_a
6253771430,1060,120,0.5,0.001,0,usr_b
6253771431,1120,60,-1,0.1,1,usr_c
";
        let opts = CTraceOptions::default();
        let (w, skipped) = read_to_workload(text, TraceFormat::GoogleJobs, &catalog, opts).unwrap();
        assert_eq!(w.len(), 2); // header + negative-cpu row skipped
        assert_eq!(skipped, 2);
        let j = &w.jobs()[0];
        assert_eq!(j.nodes, 2); // 64 cpus / 32 per node
        assert_eq!(j.mem_per_node_mib, 2048); // 0.5 × 4096
        assert_eq!(j.submit, opts.reorder_window);
        assert_eq!(w.jobs()[1].nodes, 1); // fractional cpus round up
    }

    #[test]
    fn reorder_violation_names_the_line() {
        let catalog = AppCatalog::trinity();
        let text = "\
t1,1,j_1,1,Terminated,1000,1100,100,1.0
t2,1,j_2,1,Terminated,100,300,100,1.0
";
        let mut src = CTraceSource::new(
            text.as_bytes(),
            TraceFormat::AlibabaBatch,
            &catalog,
            CTraceOptions::default(),
        );
        let err = collect_source(&mut src).unwrap_err();
        assert_eq!(err.line, Some(2));
        assert!(err.message.contains("reorder"), "{}", err.message);
    }

    #[test]
    fn corrupt_numeric_fields_are_errors_not_skips() {
        let catalog = AppCatalog::trinity();
        let text = "t1,1,j_1,1,Terminated,abc,1100,100,1.0\n";
        let err = read_to_workload(
            text,
            TraceFormat::AlibabaBatch,
            &catalog,
            CTraceOptions::default(),
        )
        .unwrap_err();
        assert_eq!(err.line, Some(1));
        assert!(err.message.contains("start_time"), "{}", err.message);
    }

    #[test]
    fn truncated_rows_are_errors_with_the_line() {
        let catalog = AppCatalog::trinity();
        let text = "\
t1,1,j_1,1,Terminated,100,400,50,1.0
t2,1,j_2,Terminated,100
";
        let err = read_to_workload(
            text,
            TraceFormat::AlibabaBatch,
            &catalog,
            CTraceOptions::default(),
        )
        .unwrap_err();
        assert_eq!(err.line, Some(2));
        assert!(err.message.contains("expected 9"), "{}", err.message);
    }

    #[test]
    fn non_finite_fields_are_errors_not_silent_rows() {
        let catalog = AppCatalog::trinity();
        for (field, text) in [
            ("start_time", "t1,1,j_1,1,Terminated,NaN,400,50,1.0\n"),
            ("end_time", "t1,1,j_1,1,Terminated,100,inf,50,1.0\n"),
            ("plan_cpu", "t1,1,j_1,1,Terminated,100,400,-inf,1.0\n"),
        ] {
            let err = read_to_workload(
                text,
                TraceFormat::AlibabaBatch,
                &catalog,
                CTraceOptions::default(),
            )
            .unwrap_err();
            assert_eq!(err.line, Some(1), "{field}");
            assert!(
                err.message.contains("non-finite"),
                "{field}: {}",
                err.message
            );
            assert!(err.message.contains(field), "{field}: {}", err.message);
        }
    }

    #[test]
    fn empty_catalog_and_bad_options_fail_up_front() {
        let text = "t1,1,j_1,1,Terminated,100,400,50,1.0\n";
        let empty = AppCatalog::new(vec![]);
        let err = read_to_workload(
            text,
            TraceFormat::AlibabaBatch,
            &empty,
            CTraceOptions::default(),
        )
        .unwrap_err();
        assert!(err.message.contains("app catalog"), "{}", err.message);

        let catalog = AppCatalog::trinity();
        for (label, opts) in [
            (
                "cores_per_node",
                CTraceOptions {
                    cores_per_node: 0,
                    ..CTraceOptions::default()
                },
            ),
            (
                "walltime_factor",
                CTraceOptions {
                    walltime_factor: f64::NAN,
                    ..CTraceOptions::default()
                },
            ),
            (
                "reorder_window",
                CTraceOptions {
                    reorder_window: -1.0,
                    ..CTraceOptions::default()
                },
            ),
        ] {
            let err =
                read_to_workload(text, TraceFormat::AlibabaBatch, &catalog, opts).unwrap_err();
            assert!(err.message.contains(label), "{label}: {}", err.message);
        }
    }

    #[test]
    fn jitter_within_window_is_repaired_in_submit_order() {
        let catalog = AppCatalog::trinity();
        let text = "\
t1,1,j_1,1,Terminated,1000,1100,100,1.0
t2,1,j_2,1,Terminated,970,1200,100,1.0
t3,1,j_3,1,Terminated,1020,1100,100,1.0
";
        let (w, _) = read_to_workload(
            text,
            TraceFormat::AlibabaBatch,
            &catalog,
            CTraceOptions::default(),
        )
        .unwrap();
        let submits: Vec<f64> = w.jobs().iter().map(|j| j.submit).collect();
        assert_eq!(submits, vec![30.0, 60.0, 80.0]); // rebased, sorted
                                                     // File order assigns ids; sorted output puts id 1 (t2) first.
        assert_eq!(w.jobs()[0].id.0, 1);
    }

    #[test]
    fn format_names_parse() {
        assert_eq!(
            TraceFormat::parse("alibaba"),
            Some(TraceFormat::AlibabaBatch)
        );
        assert_eq!(TraceFormat::parse("GOOGLE"), Some(TraceFormat::GoogleJobs));
        assert_eq!(TraceFormat::parse("swf"), None);
    }
}
