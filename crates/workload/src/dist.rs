//! Deterministic inverse-CDF samplers for the handful of distributions the
//! workload model needs.
//!
//! Implemented locally (rather than pulling in `rand_distr`) to keep the
//! dependency set to the approved list; each sampler consumes uniform
//! variates from any [`rand::Rng`], so reproducibility is inherited from
//! the seeded generator.

use rand::Rng;

/// Draws `Exp(rate)`: mean `1/rate`.
///
/// # Panics
/// Panics when `rate` is not strictly positive.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    assert!(rate > 0.0, "exponential rate must be positive");
    // random::<f64>() is uniform in [0, 1); flip to (0, 1] so ln is finite.
    let u: f64 = 1.0 - rng.random::<f64>();
    -u.ln() / rate
}

/// Draws a standard normal via Box–Muller.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Draws `LogNormal` parameterized by its *median* and the σ of the
/// underlying normal: `exp(ln(median) + sigma · Z)`.
///
/// # Panics
/// Panics when `median ≤ 0` or `sigma < 0`.
pub fn log_normal<R: Rng + ?Sized>(rng: &mut R, median: f64, sigma: f64) -> f64 {
    assert!(median > 0.0, "log-normal median must be positive");
    assert!(sigma >= 0.0, "log-normal sigma must be non-negative");
    (median.ln() + sigma * standard_normal(rng)).exp()
}

/// Draws an index from a discrete distribution proportional to `weights`.
///
/// # Panics
/// Panics when `weights` is empty, contains a negative weight, or sums
/// to zero.
pub fn weighted_index<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    assert!(!weights.is_empty(), "weights must be non-empty");
    let total: f64 = weights
        .iter()
        .inspect(|w| assert!(**w >= 0.0, "weights must be non-negative"))
        .sum();
    assert!(total > 0.0, "weights must not all be zero");
    let mut x = rng.random::<f64>() * total;
    for (i, w) in weights.iter().enumerate() {
        x -= w;
        if x < 0.0 {
            return i;
        }
    }
    weights.len() - 1 // floating-point slop: the last positive weight wins
}

/// Clamps a sample into `[lo, hi]`.
#[inline]
pub fn clamp(x: f64, lo: f64, hi: f64) -> f64 {
    x.max(lo).min(hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(42)
    }

    #[test]
    fn exponential_mean_converges() {
        let mut r = rng();
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| exponential(&mut r, 0.5)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.08, "mean {mean}");
    }

    #[test]
    fn normal_moments_converge() {
        let mut r = rng();
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.08, "var {var}");
    }

    #[test]
    fn log_normal_median_converges() {
        let mut r = rng();
        let n = 20_001;
        let mut samples: Vec<f64> = (0..n).map(|_| log_normal(&mut r, 300.0, 1.0)).collect();
        samples.sort_by(f64::total_cmp);
        let median = samples[n / 2];
        assert!((median / 300.0 - 1.0).abs() < 0.1, "median {median}");
        assert!(samples.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut r = rng();
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0u32; 3];
        for _ in 0..8_000 {
            counts[weighted_index(&mut r, &weights)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.4, "ratio {ratio}");
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let mut a = rng();
        let mut b = rng();
        for _ in 0..100 {
            assert_eq!(exponential(&mut a, 1.0), exponential(&mut b, 1.0));
        }
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn exponential_rejects_bad_rate() {
        exponential(&mut rng(), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn weighted_index_rejects_empty() {
        weighted_index(&mut rng(), &[]);
    }

    #[test]
    fn clamp_works() {
        assert_eq!(clamp(5.0, 0.0, 2.0), 2.0);
        assert_eq!(clamp(-1.0, 0.0, 2.0), 0.0);
        assert_eq!(clamp(1.0, 0.0, 2.0), 1.0);
    }
}
