#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
//! # nodeshare-workload
//!
//! Job model and workload sources for the node-sharing study:
//!
//! * [`job`] — [`JobSpec`]/[`Workload`] (true runtime vs. user estimate,
//!   share opt-in),
//! * [`dist`] — local inverse-CDF samplers (exponential, log-normal,
//!   weighted choice),
//! * [`arrival`] — Poisson / daily-cycle / uniform / batch arrivals,
//! * [`sizes`] — power-of-two-heavy node counts, log-normal runtimes,
//! * [`estimates`] — the walltime over-estimation model backfill planning
//!   depends on,
//! * [`mix`] — application mixtures over a catalog,
//! * [`generator`] — [`WorkloadSpec`]: one reproducible campaign from one
//!   seed,
//! * [`swf`] — Standard Workload Format import/export for real traces,
//! * [`ctrace`] — Google/Alibaba-style cluster-trace CSV ingestion,
//! * [`source`] — [`JobSource`]: streaming chunked delivery for
//!   million-job campaigns in bounded memory,
//! * [`stats`] — workload characterization reports.
//!
//! ```
//! use nodeshare_perf::AppCatalog;
//! use nodeshare_workload::WorkloadSpec;
//!
//! let catalog = AppCatalog::trinity();
//! let workload = WorkloadSpec::evaluation(&catalog, 42).generate(&catalog);
//! assert_eq!(workload.len(), 1000);
//! ```

pub mod arrival;
pub mod ctrace;
pub mod dist;
pub mod estimates;
pub mod generator;
pub mod job;
pub mod mix;
pub mod presets;
pub mod sizes;
pub mod source;
pub mod stats;
pub mod swf;
pub mod transform;

pub use arrival::ArrivalProcess;
pub use estimates::EstimateModel;
pub use generator::WorkloadSpec;
pub use job::{JobSpec, Malleability, Seconds, Workload};
pub use mix::AppMix;
pub use presets::Preset;
pub use sizes::{RuntimeDist, SizeDist};
pub use source::{JobSource, SourceError, WorkloadSource};
pub use stats::WorkloadStats;
