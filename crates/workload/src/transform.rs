//! Workload transformations for trace studies: windowing, load scaling,
//! and share toggling — the operations a site runs on a replayed trace
//! before feeding it to the simulator.

use crate::job::{Seconds, Workload};
use nodeshare_cluster::JobId;

impl Workload {
    /// Keeps only jobs submitted within `[from, to)`, re-basing submit
    /// times to start at zero and re-numbering ids densely (engine
    /// arrival order relies on dense submission-ordered ids).
    pub fn window(&self, from: Seconds, to: Seconds) -> Workload {
        let jobs = self
            .jobs()
            .iter()
            .filter(|j| j.submit >= from && j.submit < to)
            .enumerate()
            .map(|(i, j)| {
                let mut j = j.clone();
                j.submit -= from;
                j.id = JobId(i as u64);
                j
            })
            .collect();
        // detlint: allow(D5, invariant stated in the expect message; violating it is a bug, not a recoverable state)
        Workload::new(jobs).expect("windowing preserves validity")
    }

    /// Keeps the first `n` jobs (submission order), re-numbering ids.
    pub fn take(&self, n: usize) -> Workload {
        let jobs = self
            .jobs()
            .iter()
            .take(n)
            .enumerate()
            .map(|(i, j)| {
                let mut j = j.clone();
                j.id = JobId(i as u64);
                j
            })
            .collect();
        // detlint: allow(D5, invariant stated in the expect message; violating it is a bug, not a recoverable state)
        Workload::new(jobs).expect("prefix preserves validity")
    }

    /// Scales offered load by compressing (factor > 1) or stretching
    /// (factor < 1) inter-arrival times: submit times divide by `factor`.
    /// Runtimes are untouched, so load scales linearly with `factor`.
    ///
    /// # Panics
    /// Panics on a non-positive factor.
    pub fn scale_load(&self, factor: f64) -> Workload {
        assert!(factor > 0.0, "load factor must be positive");
        let jobs = self
            .jobs()
            .iter()
            .map(|j| {
                let mut j = j.clone();
                j.submit /= factor;
                j
            })
            .collect();
        // detlint: allow(D5, invariant stated in the expect message; violating it is a bug, not a recoverable state)
        Workload::new(jobs).expect("scaling preserves validity")
    }

    /// Returns a copy with every job's share eligibility forced to
    /// `eligible` — the standard A/B toggle for sharing studies on traces
    /// that carry no opt-in information.
    pub fn with_share_eligibility(&self, eligible: bool) -> Workload {
        self.map_jobs(|mut j| {
            j.share_eligible = eligible;
            j
        })
        // detlint: allow(D5, invariant stated in the expect message; violating it is a bug, not a recoverable state)
        .expect("toggling preserves validity")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::WorkloadSpec;
    use nodeshare_perf::AppCatalog;

    fn workload() -> Workload {
        let catalog = AppCatalog::trinity();
        let spec = WorkloadSpec {
            n_jobs: 200,
            ..WorkloadSpec::evaluation(&catalog, 21)
        };
        spec.generate(&catalog)
    }

    #[test]
    fn window_rebases_and_renumbers() {
        let w = workload();
        let span = w.submit_span();
        let mid = w.jobs()[0].submit + span / 2.0;
        let first_half = w.window(0.0, mid);
        let second_half = w.window(mid, f64::INFINITY);
        assert_eq!(first_half.len() + second_half.len(), w.len());
        assert!(first_half.len() > 10 && second_half.len() > 10);
        // Re-based: each job's submit equals its original minus the
        // window start.
        let first_in_second = w.jobs().iter().find(|j| j.submit >= mid).unwrap();
        assert!((second_half.jobs()[0].submit - (first_in_second.submit - mid)).abs() < 1e-9);
        // Dense ids in both.
        for (i, j) in second_half.jobs().iter().enumerate() {
            assert_eq!(j.id, JobId(i as u64));
        }
    }

    #[test]
    fn take_is_a_prefix() {
        let w = workload();
        let head = w.take(50);
        assert_eq!(head.len(), 50);
        for (a, b) in head.jobs().iter().zip(w.jobs()) {
            assert_eq!(a.submit, b.submit);
            assert_eq!(a.app, b.app);
        }
        assert_eq!(w.take(10_000).len(), w.len());
    }

    #[test]
    fn scale_load_compresses_arrivals() {
        let w = workload();
        let double = w.scale_load(2.0);
        assert!((double.submit_span() - w.submit_span() / 2.0).abs() < 1e-6);
        assert_eq!(
            double.total_work_node_seconds(),
            w.total_work_node_seconds()
        );
        // Scaling by 1 is the identity on times.
        let same = w.scale_load(1.0);
        assert_eq!(same.submit_span(), w.submit_span());
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn scale_load_rejects_zero() {
        workload().scale_load(0.0);
    }

    #[test]
    fn share_toggle_is_total() {
        let w = workload().with_share_eligibility(false);
        assert_eq!(w.share_fraction(), 0.0);
        let w = w.with_share_eligibility(true);
        assert_eq!(w.share_fraction(), 1.0);
    }
}
