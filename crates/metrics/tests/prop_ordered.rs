//! Property tests for the deterministic merge: whatever completion
//! schedule the thread pool produces, items leave the reorder buffer in
//! canonical order, exactly once each.

use nodeshare_metrics::{OrderedMerge, OrderedTable};
use proptest::prelude::*;

/// Turns arbitrary sort keys into a completion permutation of `0..n`:
/// the order in which "workers" happen to finish the n cells.
fn permutation_from_keys(keys: &[u64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..keys.len()).collect();
    order.sort_by_key(|&i| (keys[i], i));
    order
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any completion permutation yields the canonical emission order.
    #[test]
    fn merge_emits_canonically_under_any_schedule(
        keys in prop::collection::vec(0u64..1_000, 0..120),
    ) {
        let schedule = permutation_from_keys(&keys);
        let n = schedule.len();
        let mut merge = OrderedMerge::new(n);
        let mut emitted: Vec<(usize, usize)> = Vec::new();
        for &cell in &schedule {
            merge.push(cell, cell * 7 + 1, |idx, item| emitted.push((idx, item)));
            // The merge never runs ahead of what has completed.
            prop_assert!(merge.emitted() <= n);
        }
        prop_assert!(merge.is_complete());
        prop_assert_eq!(emitted.len(), n);
        for (expect, (idx, item)) in emitted.iter().enumerate() {
            prop_assert_eq!(*idx, expect);
            prop_assert_eq!(*item, expect * 7 + 1);
        }
        // The buffer high-water mark is bounded by the schedule length.
        prop_assert!(merge.peak_pending() <= n.saturating_sub(1));
    }

    /// Streaming rows through an [`OrderedTable`] under any schedule
    /// renders byte-identically to building the table serially.
    #[test]
    fn ordered_table_matches_serial_rendering(
        keys in prop::collection::vec(0u64..1_000, 1..60),
    ) {
        let schedule = permutation_from_keys(&keys);
        let n = schedule.len();
        let row = |i: usize| vec![format!("cell{i}"), format!("{}", i * i)];

        let mut serial = nodeshare_metrics::Table::new(vec!["cell", "value"]);
        for i in 0..n {
            serial.row(row(i));
        }

        let mut streamed = OrderedTable::new(vec!["cell", "value"], n);
        let mut released = 0;
        for &cell in &schedule {
            released += streamed.push(cell, row(cell));
        }
        prop_assert_eq!(released, n);
        let streamed = streamed.finish();
        prop_assert_eq!(streamed.to_csv(), serial.to_csv());
        prop_assert_eq!(streamed.render(), serial.render());
    }
}
