//! Degenerate-input behavior of the metrics crate: empty series,
//! single-sample summaries and histograms, zero baselines, and the
//! documented NaN policy. Every case here is something an experiment
//! binary can actually produce (an idle campaign, a one-job workload).

use nodeshare_metrics::{
    by_app, by_user, jain_index, mean, relative_gain, Buckets, Histogram, JobRecord, StepSeries,
    Summary,
};

fn one_record() -> JobRecord {
    JobRecord {
        id: nodeshare_cluster::JobId(7),
        app: nodeshare_perf::AppId(2),
        nodes: 3,
        submit: 10.0,
        start: 10.0,
        finish: 110.0,
        runtime_exclusive: 100.0,
        walltime_estimate: 200.0,
        shared_node_seconds: 0.0,
        killed: false,
        shared_alloc: false,
        restarts: 0,
        salvaged_work: 0.0,
        user: 5,
    }
}

#[test]
fn empty_series_is_zero_everywhere() {
    let s = StepSeries::new();
    assert_eq!(s.value_at(0.0), 0.0);
    assert_eq!(s.value_at(1e12), 0.0);
    assert_eq!(s.integral(0.0, 1e6), 0.0);
    assert_eq!(s.integral(5.0, 5.0), 0.0);
    assert_eq!(s.max_value(), 0.0);
    assert!(s.points().is_empty());
    // Sampling an empty series is legal and all-zero.
    let samples = s.sample(0.0, 10.0, 3);
    assert_eq!(samples, vec![(0.0, 0.0), (5.0, 0.0), (10.0, 0.0)]);
}

#[test]
fn series_integral_handles_inverted_and_degenerate_ranges() {
    let mut s = StepSeries::new();
    s.record(0.0, 2.0);
    assert_eq!(s.integral(10.0, 5.0), 0.0); // inverted: defined as 0
    assert_eq!(s.integral(3.0, 3.0), 0.0); // zero-width
    assert_eq!(s.integral(0.0, 4.0), 8.0);
}

#[test]
fn single_sample_summary_is_that_sample() {
    let s = Summary::of(&[42.5]);
    assert_eq!(s.n, 1);
    assert_eq!(s.mean, 42.5);
    assert_eq!(s.median, 42.5);
    assert_eq!(s.p95, 42.5);
    assert_eq!(s.min, 42.5);
    assert_eq!(s.max, 42.5);
}

#[test]
fn single_sample_histogram_lands_in_one_bucket() {
    let h = Histogram::of(
        [1.5],
        &Buckets::Linear {
            lo: 0.0,
            hi: 4.0,
            count: 4,
        },
    );
    assert_eq!(h.total(), 1);
    let counts: Vec<u64> = h.buckets().map(|(_, _, c)| c).collect();
    assert_eq!(counts, vec![0, 1, 0, 0]);
    assert_eq!(h.underflow, 0);
    assert_eq!(h.overflow, 0);
    // Rendering a near-empty histogram neither panics nor divides by zero.
    let empty = Histogram::of(
        [],
        &Buckets::Linear {
            lo: 0.0,
            hi: 1.0,
            count: 2,
        },
    );
    assert_eq!(empty.total(), 0);
    assert_eq!(empty.render(10).lines().count(), 2);
}

#[test]
fn relative_gain_zero_baseline_is_defined() {
    assert_eq!(relative_gain(5.0, 0.0), 0.0);
    assert_eq!(relative_gain(0.0, 0.0), 0.0);
    assert_eq!(relative_gain(-3.0, 0.0), 0.0);
    // ...and stays an actual ratio off zero.
    assert!((relative_gain(1.5, 1.0) - 0.5).abs() < 1e-12);
}

#[test]
fn empty_and_singleton_groupings() {
    assert!(by_user(&[]).is_empty());
    assert!(by_app(&[]).is_empty());
    let groups = by_user(&[one_record()]);
    assert_eq!(groups.len(), 1);
    let g = &groups[&5];
    assert_eq!(g.jobs, 1);
    assert_eq!(g.wait.n, 1);
    assert_eq!(g.wait.mean, 0.0);
    assert_eq!(g.shared_fraction, 0.0);
    // A killed singleton has an *empty* dilation summary, not a NaN one.
    let mut killed = one_record();
    killed.killed = true;
    let g = by_app(&[killed]).into_values().next().unwrap();
    assert_eq!(g.dilation.n, 0);
    assert_eq!(g.dilation.mean, 0.0);
}

#[test]
fn jain_index_degenerate_samples() {
    assert_eq!(jain_index(&[]), 1.0);
    assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
    assert_eq!(jain_index(&[3.7]), 1.0); // one user is trivially fair
    let skewed = jain_index(&[1.0, 0.0, 0.0, 0.0]);
    assert!((skewed - 0.25).abs() < 1e-12);
}

#[test]
fn finite_inputs_never_produce_nan() {
    // The documented NaN policy: finite in, finite out, even at the
    // degenerate corners.
    for s in [
        Summary::of(&[]),
        Summary::of(&[0.0]),
        Summary::of(&[f64::MAX, f64::MIN_POSITIVE]),
    ] {
        for v in [s.mean, s.median, s.p95, s.min, s.max] {
            assert!(v.is_finite(), "{s:?}");
        }
    }
    assert!(mean(&[]).is_finite());
    assert!(!relative_gain(1.0, 0.0).is_nan());
    assert!(!jain_index(&[0.0]).is_nan());

    // NaN *inputs* are tolerated without panicking and sort last.
    let s = Summary::of(&[1.0, f64::NAN, 2.0]);
    assert_eq!(s.min, 1.0);
    assert!(s.max.is_nan()); // contaminates max, as documented
}
