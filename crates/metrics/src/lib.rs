#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
//! # nodeshare-metrics
//!
//! Metric definitions for the node-sharing study:
//!
//! * [`record`] — per-job completion records ([`JobRecord`]) with wait /
//!   response / dilation / bounded-slowdown accessors,
//! * [`campaign`] — campaign aggregates ([`CampaignMetrics`]), including
//!   the paper's **computational efficiency** and **scheduling
//!   efficiency**,
//! * [`stats`] — summary statistics and relative-gain arithmetic,
//! * [`series`] — exact step-function time series (occupancy
//!   integration),
//! * [`fairness`] — per-user/per-app outcome groups and Jain's index,
//! * [`ordered`] — deterministic merge of out-of-order campaign-cell
//!   results ([`OrderedMerge`], [`OrderedTable`]),
//! * [`table`] — text/CSV renderers used by every experiment binary.

pub mod campaign;
pub mod fairness;
pub mod histogram;
pub mod ordered;
pub mod record;
pub mod series;
pub mod stats;
pub mod table;

pub use campaign::CampaignMetrics;
pub use fairness::{by_app, by_user, jain_index, user_slowdown_fairness, GroupOutcome};
pub use histogram::{Buckets, Histogram};
pub use ordered::{OrderedMerge, OrderedTable};
pub use record::JobRecord;
pub use series::{StepAccum, StepSeries};
pub use stats::{mean, percentile_sorted, relative_gain, Summary};
pub use table::{fmt_seconds, pct, Table};
