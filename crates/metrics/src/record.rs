//! Per-job completion records — the raw material of every metric.

use nodeshare_cluster::JobId;
use nodeshare_perf::AppId;
use nodeshare_workload::Seconds;
use serde::{Deserialize, Serialize};

/// Threshold below which runtimes are clamped in the bounded-slowdown
/// metric (the conventional 10 s).
pub const BOUNDED_SLOWDOWN_TAU: Seconds = 10.0;

/// Everything the simulation learned about one finished job.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct JobRecord {
    /// Job identity.
    pub id: JobId,
    /// Application the job ran.
    pub app: AppId,
    /// Nodes held while running.
    pub nodes: u32,
    /// Submission time.
    pub submit: Seconds,
    /// Start of execution.
    pub start: Seconds,
    /// Completion time.
    pub finish: Seconds,
    /// True exclusive runtime (the job's work in node-seconds is
    /// `nodes × runtime_exclusive`).
    pub runtime_exclusive: Seconds,
    /// The user's walltime estimate the scheduler planned with.
    pub walltime_estimate: Seconds,
    /// Node-seconds during which the job was co-resident with another job
    /// (summed per node: a 2-node job sharing one node for 100 s adds 100).
    pub shared_node_seconds: f64,
    /// Whether the job was killed at its walltime limit before finishing
    /// its work.
    pub killed: bool,
    /// Whether the job ran in a shared (lane) allocation.
    pub shared_alloc: bool,
    /// Times the job was requeued by node failures before this (final)
    /// attempt. Each restart wastes the previous attempt's node-time.
    pub restarts: u32,
    /// Work restored from checkpoints at the final attempt's start,
    /// exclusive-seconds (0 without checkpointing).
    pub salvaged_work: f64,
    /// Submitting user.
    pub user: u32,
}

impl JobRecord {
    /// Queue wait: `start − submit`.
    #[inline]
    pub fn wait(&self) -> Seconds {
        self.start - self.submit
    }

    /// Actual execution time: `finish − start`.
    #[inline]
    pub fn run(&self) -> Seconds {
        self.finish - self.start
    }

    /// Response (turnaround) time: `finish − submit`.
    #[inline]
    pub fn response(&self) -> Seconds {
        self.finish - self.submit
    }

    /// Runtime dilation caused by co-running: the final attempt's actual
    /// runtime over the exclusive runtime of the work it performed
    /// (checkpoint-salvaged work is excluded from the denominator).
    /// 1.0 means no overhead — the paper's headline "no overhead" claim
    /// is a statement about this distribution.
    #[inline]
    pub fn dilation(&self) -> f64 {
        self.run() / (self.runtime_exclusive - self.salvaged_work).max(1e-9)
    }

    /// Bounded slowdown: `max(1, response / max(run, τ))` with τ = 10 s.
    pub fn bounded_slowdown(&self) -> f64 {
        (self.response() / self.run().max(BOUNDED_SLOWDOWN_TAU)).max(1.0)
    }

    /// Useful work completed, in exclusive node-seconds. Killed jobs
    /// deliver only the fraction of work they finished.
    pub fn work_done_node_seconds(&self) -> f64 {
        if self.killed {
            // A killed job completed `run × mean-rate` of its work; the
            // engine records the actual completed fraction via
            // `runtime_exclusive` scaling below being an upper bound, so
            // conservatively count zero: sites treat killed jobs as waste.
            0.0
        } else {
            self.nodes as f64 * self.runtime_exclusive
        }
    }

    /// Node-seconds of machine time the job occupied (`nodes × run`).
    #[inline]
    pub fn occupied_node_seconds(&self) -> f64 {
        self.nodes as f64 * self.run()
    }

    /// Consistency check used by tests and debug assertions.
    pub fn validate(&self) -> Result<(), String> {
        if self.start + 1e-9 < self.submit {
            return Err(format!("{}: started before submission", self.id));
        }
        if self.finish + 1e-9 < self.start {
            return Err(format!("{}: finished before start", self.id));
        }
        if self.shared_node_seconds > self.occupied_node_seconds() + 1e-6 {
            return Err(format!(
                "{}: shared node-seconds exceed occupied node-seconds",
                self.id
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> JobRecord {
        JobRecord {
            id: JobId(1),
            app: AppId(0),
            nodes: 4,
            submit: 100.0,
            start: 160.0,
            finish: 360.0,
            runtime_exclusive: 180.0,
            walltime_estimate: 400.0,
            shared_node_seconds: 300.0,
            killed: false,
            shared_alloc: true,
            restarts: 0,
            salvaged_work: 0.0,
            user: 3,
        }
    }

    #[test]
    fn derived_times() {
        let r = record();
        assert_eq!(r.wait(), 60.0);
        assert_eq!(r.run(), 200.0);
        assert_eq!(r.response(), 260.0);
        assert!((r.dilation() - 200.0 / 180.0).abs() < 1e-12);
        assert!((r.bounded_slowdown() - 1.3).abs() < 1e-12);
        assert_eq!(r.work_done_node_seconds(), 720.0);
        assert_eq!(r.occupied_node_seconds(), 800.0);
        assert!(r.validate().is_ok());
    }

    #[test]
    fn bounded_slowdown_clamps_short_jobs() {
        let mut r = record();
        r.finish = r.start + 1.0; // 1-second run
                                  // response = 61, run clamped to 10 → slowdown 6.1
        assert!((r.bounded_slowdown() - 6.1).abs() < 1e-12);

        let mut r = record();
        r.submit = r.start; // no wait → slowdown exactly 1
        assert_eq!(r.bounded_slowdown(), 1.0);
    }

    #[test]
    fn killed_jobs_deliver_no_work() {
        let mut r = record();
        r.killed = true;
        assert_eq!(r.work_done_node_seconds(), 0.0);
    }

    #[test]
    fn validation_catches_inconsistencies() {
        let mut r = record();
        r.start = 50.0;
        assert!(r.validate().is_err());
        let mut r = record();
        r.finish = 100.0;
        assert!(r.validate().is_err());
        let mut r = record();
        r.shared_node_seconds = 10_000.0;
        assert!(r.validate().is_err());
    }
}
