//! Fairness metrics: does node sharing spread its costs and benefits
//! evenly across users and applications?
//!
//! Sharing creates a new fairness question a site must answer before
//! enabling it: co-allocated jobs pay the dilation while everyone enjoys
//! the shorter queue. These aggregations quantify who pays.

use crate::record::JobRecord;
use crate::stats::Summary;
use nodeshare_perf::AppId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Per-group (user or application) outcome summary.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GroupOutcome {
    /// Jobs in the group.
    pub jobs: usize,
    /// Wait-time summary.
    pub wait: Summary,
    /// Bounded-slowdown summary.
    pub bounded_slowdown: Summary,
    /// Dilation summary (non-killed jobs).
    pub dilation: Summary,
    /// Fraction of the group's jobs that ran co-allocated.
    pub shared_fraction: f64,
}

fn outcome_of(records: &[&JobRecord]) -> GroupOutcome {
    let waits: Vec<f64> = records.iter().map(|r| r.wait()).collect();
    let bsld: Vec<f64> = records.iter().map(|r| r.bounded_slowdown()).collect();
    let dil: Vec<f64> = records
        .iter()
        .filter(|r| !r.killed)
        .map(|r| r.dilation())
        .collect();
    let shared = records.iter().filter(|r| r.shared_alloc).count();
    GroupOutcome {
        jobs: records.len(),
        wait: Summary::of(&waits),
        bounded_slowdown: Summary::of(&bsld),
        dilation: Summary::of(&dil),
        shared_fraction: if records.is_empty() {
            0.0
        } else {
            shared as f64 / records.len() as f64
        },
    }
}

/// Groups records by submitting user.
pub fn by_user(records: &[JobRecord]) -> BTreeMap<u32, GroupOutcome> {
    let mut groups: BTreeMap<u32, Vec<&JobRecord>> = BTreeMap::new();
    for r in records {
        groups.entry(r.user).or_default().push(r);
    }
    groups
        .into_iter()
        .map(|(u, rs)| (u, outcome_of(&rs)))
        .collect()
}

/// Groups records by application.
pub fn by_app(records: &[JobRecord]) -> BTreeMap<AppId, GroupOutcome> {
    let mut groups: BTreeMap<AppId, Vec<&JobRecord>> = BTreeMap::new();
    for r in records {
        groups.entry(r.app).or_default().push(r);
    }
    groups
        .into_iter()
        .map(|(a, rs)| (a, outcome_of(&rs)))
        .collect()
}

/// Jain's fairness index of a sample: `(Σx)² / (n · Σx²)`, in `(0, 1]`;
/// 1.0 means perfectly equal. Conventionally applied to per-user mean
/// slowdowns. Returns 1.0 for empty or all-zero samples (nobody is
/// treated unequally when nobody gets anything).
pub fn jain_index(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    // detlint: allow(D4, caller passes canonically ordered values; serial sum is deterministic)
    let sum: f64 = values.iter().sum();
    // detlint: allow(D4, caller passes canonically ordered values; serial sum is deterministic)
    let sq: f64 = values.iter().map(|v| v * v).sum();
    if sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (values.len() as f64 * sq)
}

/// Jain's index over per-user mean bounded slowdowns — the standard
/// single-number fairness read-out for a campaign.
pub fn user_slowdown_fairness(records: &[JobRecord]) -> f64 {
    let per_user: Vec<f64> = by_user(records)
        .values()
        .map(|g| g.bounded_slowdown.mean)
        .collect();
    jain_index(&per_user)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodeshare_cluster::JobId;

    fn rec(id: u64, user: u32, app: u8, wait: f64, shared: bool) -> JobRecord {
        JobRecord {
            id: JobId(id),
            app: AppId(app),
            nodes: 1,
            submit: 0.0,
            start: wait,
            finish: wait + 100.0,
            runtime_exclusive: 100.0,
            walltime_estimate: 200.0,
            shared_node_seconds: 0.0,
            killed: false,
            shared_alloc: shared,
            restarts: 0,
            salvaged_work: 0.0,
            user,
        }
    }

    #[test]
    fn groups_by_user_and_app() {
        let records = vec![
            rec(1, 0, 0, 10.0, true),
            rec(2, 0, 1, 30.0, false),
            rec(3, 1, 0, 50.0, true),
        ];
        let users = by_user(&records);
        assert_eq!(users.len(), 2);
        assert_eq!(users[&0].jobs, 2);
        assert_eq!(users[&0].shared_fraction, 0.5);
        assert_eq!(users[&1].wait.mean, 50.0);

        let apps = by_app(&records);
        assert_eq!(apps.len(), 2);
        assert_eq!(apps[&AppId(0)].jobs, 2);
        assert_eq!(apps[&AppId(0)].shared_fraction, 1.0);
    }

    #[test]
    fn jain_index_bounds() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
        assert!((jain_index(&[2.0, 2.0, 2.0]) - 1.0).abs() < 1e-12);
        // One user hogging everything: index → 1/n.
        let skewed = jain_index(&[10.0, 0.0, 0.0, 0.0]);
        assert!((skewed - 0.25).abs() < 1e-12);
        // Mild skew sits in between.
        let mild = jain_index(&[1.0, 2.0]);
        assert!(mild > 0.25 && mild < 1.0);
    }

    #[test]
    fn user_fairness_of_equal_treatment_is_one() {
        let records = vec![
            rec(1, 0, 0, 100.0, false),
            rec(2, 1, 0, 100.0, false),
            rec(3, 2, 0, 100.0, false),
        ];
        assert!((user_slowdown_fairness(&records) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unequal_waits_lower_the_index() {
        let equal = vec![rec(1, 0, 0, 50.0, false), rec(2, 1, 0, 50.0, false)];
        let skewed = vec![rec(1, 0, 0, 0.0, false), rec(2, 1, 0, 5_000.0, false)];
        assert!(user_slowdown_fairness(&skewed) < user_slowdown_fairness(&equal));
    }

    #[test]
    fn killed_jobs_excluded_from_dilation_groups() {
        let mut r = rec(1, 0, 0, 0.0, true);
        r.killed = true;
        let groups = by_user(&[r]);
        assert_eq!(groups[&0].dilation.n, 0);
        assert_eq!(groups[&0].jobs, 1);
    }
}
