//! Plain-text table and CSV rendering for the experiment harness.
//!
//! The bench binaries print each paper table/figure as an aligned text
//! table (for the terminal) and CSV (for plotting); both renderers live
//! here so every experiment reports in the same format.

/// A simple column-aligned table builder.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; short rows are padded with empty cells.
    ///
    /// # Panics
    /// Panics if the row has more cells than the header has columns.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let mut cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert!(
            cells.len() <= self.header.len(),
            "row wider than header ({} > {})",
            cells.len(),
            self.header.len()
        );
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders an aligned text table with a separator under the header.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders RFC-4180-ish CSV (cells containing commas or quotes are
    /// quoted).
    pub fn to_csv(&self) -> String {
        let esc = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .header
                .iter()
                .map(|c| esc(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a ratio as a signed percentage with one decimal: `0.252` →
/// `"+25.2%"`.
pub fn pct(gain: f64) -> String {
    format!("{:+.1}%", gain * 100.0)
}

/// Formats seconds compactly: `5432.1` → `"1h30m"` style for large values,
/// plain seconds for small ones.
pub fn fmt_seconds(s: f64) -> String {
    if s >= 3_600.0 {
        format!("{:.1}h", s / 3_600.0)
    } else if s >= 60.0 {
        format!("{:.1}m", s / 60.0)
    } else {
        format!("{s:.1}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["a", "1"]).row(vec!["longer", "22"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // All rows have equal width.
        assert_eq!(lines[2].len(), lines[3].len());
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.row(vec!["1"]);
        assert!(t.render().contains('1'));
        assert_eq!(t.to_csv().lines().nth(1).unwrap(), "1,,");
    }

    #[test]
    #[should_panic(expected = "wider than header")]
    fn wide_rows_panic() {
        Table::new(vec!["a"]).row(vec!["1", "2"]);
    }

    #[test]
    fn csv_escapes_special_cells() {
        let mut t = Table::new(vec!["x"]);
        t.row(vec!["has,comma"]).row(vec!["has\"quote"]);
        let csv = t.to_csv();
        assert!(csv.contains("\"has,comma\""));
        assert!(csv.contains("\"has\"\"quote\""));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.252), "+25.2%");
        assert_eq!(pct(-0.05), "-5.0%");
        assert_eq!(fmt_seconds(30.0), "30.0s");
        assert_eq!(fmt_seconds(90.0), "1.5m");
        assert_eq!(fmt_seconds(5_400.0), "1.5h");
    }
}
