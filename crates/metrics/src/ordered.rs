//! Deterministic merge of out-of-order results.
//!
//! The campaign orchestrator runs independent simulation cells on a
//! worker pool, so results arrive in *completion* order — a function of
//! thread scheduling, not of the experiment. Everything downstream
//! (tables, CSVs, aggregate statistics) must instead see the *canonical*
//! order declared by the campaign spec, or two runs of the same campaign
//! would emit differently ordered (and differently rounded, once
//! aggregated) artifacts.
//!
//! [`OrderedMerge`] is the reorder buffer between the two: results are
//! pushed under their canonical index in any order; the merge emits the
//! longest contiguous prefix the moment it becomes available. Memory is
//! bounded by the out-of-orderness of the schedule, not by the campaign
//! size. [`OrderedTable`] layers a [`Table`] on top so experiment rows
//! can stream straight into a render-ready artifact.

use crate::table::Table;
use std::collections::BTreeMap;

/// A reorder buffer: accepts `(canonical index, item)` pairs in any
/// order and releases items in canonical order.
#[derive(Debug)]
pub struct OrderedMerge<T> {
    /// Next canonical index to emit.
    next: usize,
    /// Total number of expected items.
    n: usize,
    /// Items that arrived ahead of their turn, keyed by canonical index.
    pending: BTreeMap<usize, T>,
    /// High-water mark of `pending.len()`, for diagnostics.
    peak_pending: usize,
}

impl<T> OrderedMerge<T> {
    /// A merge expecting exactly `n` items with canonical indices
    /// `0..n`.
    pub fn new(n: usize) -> Self {
        OrderedMerge {
            next: 0,
            n,
            pending: BTreeMap::new(),
            peak_pending: 0,
        }
    }

    /// Offers one completed item. `emit` is invoked — possibly several
    /// times — for every item whose canonical turn has come, in
    /// canonical order.
    ///
    /// # Panics
    /// Panics on an index `>= n` or on a duplicate: both mean the
    /// producer enumerated cells inconsistently with the spec, which
    /// would silently corrupt the merge if tolerated.
    pub fn push(&mut self, index: usize, item: T, mut emit: impl FnMut(usize, T)) {
        assert!(
            index < self.n,
            "merge index {index} out of range (expected {} items)",
            self.n
        );
        assert!(
            index >= self.next && !self.pending.contains_key(&index),
            "duplicate merge index {index}"
        );
        if index == self.next {
            emit(self.next, item);
            self.next += 1;
            // Release the contiguous run the newcomer unblocked.
            while let Some(item) = self.pending.remove(&self.next) {
                emit(self.next, item);
                self.next += 1;
            }
        } else {
            self.pending.insert(index, item);
            self.peak_pending = self.peak_pending.max(self.pending.len());
        }
    }

    /// True once every expected item has been pushed and emitted.
    pub fn is_complete(&self) -> bool {
        self.next == self.n && self.pending.is_empty()
    }

    /// Number of items emitted so far.
    pub fn emitted(&self) -> usize {
        self.next
    }

    /// Items currently buffered out of order.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// The largest number of items ever buffered at once — how far the
    /// completion schedule strayed from canonical order.
    pub fn peak_pending(&self) -> usize {
        self.peak_pending
    }
}

/// A [`Table`] fed by out-of-order row completions: rows stream in under
/// their canonical index and land in the table in canonical order.
#[derive(Debug)]
pub struct OrderedTable {
    table: Table,
    merge: OrderedMerge<Vec<String>>,
}

impl OrderedTable {
    /// A table with the given header, expecting `n` rows.
    pub fn new<S: Into<String>>(header: Vec<S>, n: usize) -> Self {
        OrderedTable {
            table: Table::new(header),
            merge: OrderedMerge::new(n),
        }
    }

    /// Ingests one row under its canonical index; returns how many rows
    /// the table grew by (0 when the row was buffered, more when it
    /// unblocked a run).
    pub fn push(&mut self, index: usize, row: Vec<String>) -> usize {
        let before = self.table.len();
        let table = &mut self.table;
        self.merge.push(index, row, |_, r| {
            table.row(r);
        });
        self.table.len() - before
    }

    /// Rows ingested *and released* so far.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// True when no rows have been released yet.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Finishes the stream, returning the completed table.
    ///
    /// # Panics
    /// Panics when rows are missing — a campaign that lost cells must
    /// not render a silently truncated table.
    pub fn finish(self) -> Table {
        assert!(
            self.merge.is_complete(),
            "ordered table incomplete: {} of {} rows ingested ({} buffered out of order)",
            self.merge.emitted(),
            self.merge.n,
            self.merge.pending_len()
        );
        self.table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_stream_passes_through() {
        let mut m = OrderedMerge::new(3);
        let mut got = Vec::new();
        for i in 0..3 {
            m.push(i, i * 10, |idx, v| got.push((idx, v)));
        }
        assert_eq!(got, vec![(0, 0), (1, 10), (2, 20)]);
        assert!(m.is_complete());
        assert_eq!(m.peak_pending(), 0);
    }

    #[test]
    fn reversed_stream_is_reordered() {
        let mut m = OrderedMerge::new(4);
        let mut got = Vec::new();
        for i in (0..4).rev() {
            m.push(i, i, |idx, v| got.push((idx, v)));
        }
        assert_eq!(got, vec![(0, 0), (1, 1), (2, 2), (3, 3)]);
        assert_eq!(m.peak_pending(), 3);
        assert!(m.is_complete());
    }

    #[test]
    fn partial_stream_reports_incomplete() {
        let mut m = OrderedMerge::new(3);
        m.push(2, "c", |_, _| {});
        m.push(0, "a", |_, _| {});
        assert!(!m.is_complete());
        assert_eq!(m.emitted(), 1);
        assert_eq!(m.pending_len(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_index_panics() {
        OrderedMerge::new(2).push(2, (), |_, _| {});
    }

    #[test]
    #[should_panic(expected = "duplicate merge index")]
    fn duplicate_index_panics() {
        let mut m = OrderedMerge::new(3);
        m.push(1, (), |_, _| {});
        m.push(1, (), |_, _| {});
    }

    #[test]
    #[should_panic(expected = "duplicate merge index")]
    fn already_emitted_index_panics() {
        let mut m = OrderedMerge::new(3);
        m.push(0, (), |_, _| {});
        m.push(0, (), |_, _| {});
    }

    #[test]
    fn ordered_table_streams_rows_canonically() {
        let mut t = OrderedTable::new(vec!["cell", "value"], 3);
        assert_eq!(t.push(1, vec!["b".into(), "2".into()]), 0);
        assert!(t.is_empty());
        assert_eq!(t.push(0, vec!["a".into(), "1".into()]), 2);
        assert_eq!(t.push(2, vec!["c".into(), "3".into()]), 1);
        assert_eq!(t.len(), 3);
        let csv = t.finish().to_csv();
        assert_eq!(csv, "cell,value\na,1\nb,2\nc,3\n");
    }

    #[test]
    #[should_panic(expected = "incomplete")]
    fn unfinished_table_panics_on_finish() {
        let t = OrderedTable::new(vec!["x"], 2);
        t.finish();
    }
}
