//! Step-function time series for occupancy integration and figures.
//!
//! The engine drives a few of these (busy cores, shared cores, queue
//! depth). The series integrates exactly — occupancy changes only at
//! events, so a step function is the truth, not an approximation.

use nodeshare_workload::Seconds;
use serde::{Deserialize, Serialize};

/// A right-continuous step function of time built from change events.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct StepSeries {
    /// `(time, new_value)` change points, time-ascending.
    points: Vec<(Seconds, f64)>,
}

impl StepSeries {
    /// An empty series (value 0 everywhere until the first point).
    pub fn new() -> Self {
        StepSeries::default()
    }

    /// Records that the value changed to `value` at `time`.
    ///
    /// # Panics
    /// Panics if `time` precedes the last recorded change — engines emit
    /// events in time order.
    pub fn record(&mut self, time: Seconds, value: f64) {
        if let Some(&(last_t, last_v)) = self.points.last() {
            assert!(time >= last_t, "series updates must be time-ordered");
            if last_v == value {
                return; // no change, no point
            }
            if time == last_t {
                // Same-instant update supersedes the previous value.
                self.points.pop();
                if let Some(&(_, prev_v)) = self.points.last() {
                    if prev_v == value {
                        return;
                    }
                }
            }
        } else if value == 0.0 {
            return; // implicit initial zero
        }
        self.points.push((time, value));
    }

    /// Value at `time` (0 before the first change).
    pub fn value_at(&self, time: Seconds) -> f64 {
        match self.points.binary_search_by(|&(t, _)| t.total_cmp(&time)) {
            Ok(i) => self.points[i].1,
            Err(0) => 0.0,
            Err(i) => self.points[i - 1].1,
        }
    }

    /// Exact integral of the step function over `[from, to]`.
    pub fn integral(&self, from: Seconds, to: Seconds) -> f64 {
        if to <= from || self.points.is_empty() {
            return 0.0;
        }
        let mut acc = 0.0;
        let mut t = from;
        let mut v = self.value_at(from);
        for &(pt, pv) in &self.points {
            if pt <= from {
                continue;
            }
            if pt >= to {
                break;
            }
            acc += v * (pt - t);
            t = pt;
            v = pv;
        }
        acc + v * (to - t)
    }

    /// Change points, for plotting.
    pub fn points(&self) -> &[(Seconds, f64)] {
        &self.points
    }

    /// Maximum value ever recorded (0 for an empty series).
    pub fn max_value(&self) -> f64 {
        // detlint: allow(D4, max fold is order-insensitive)
        self.points.iter().map(|&(_, v)| v).fold(0.0, f64::max)
    }

    /// Samples the series at `n` evenly spaced instants in `[from, to]`,
    /// for fixed-resolution figure output.
    pub fn sample(&self, from: Seconds, to: Seconds, n: usize) -> Vec<(Seconds, f64)> {
        assert!(n >= 2, "need at least two samples");
        (0..n)
            .map(|i| {
                let t = from + (to - from) * i as f64 / (n - 1) as f64;
                (t, self.value_at(t))
            })
            .collect()
    }
}

/// O(1)-memory companion to [`StepSeries`]: tracks only the running
/// integral and maximum of a step function, never the change points.
///
/// Million-job streamed runs use this where retaining every change point
/// would make memory proportional to event count. Semantics mirror
/// [`StepSeries::record`]: right-continuous steps, implicit initial zero,
/// same-instant updates supersede (a zero-width interval contributes
/// nothing to the integral either way).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StepAccum {
    last_t: Seconds,
    last_v: f64,
    integral: f64,
    max: f64,
}

impl StepAccum {
    /// A fresh accumulator (value 0 at time 0).
    pub fn new() -> Self {
        StepAccum::default()
    }

    /// Records that the value changed to `value` at `time`.
    ///
    /// # Panics
    /// Panics if `time` precedes the last recorded change.
    pub fn record(&mut self, time: Seconds, value: f64) {
        assert!(
            time >= self.last_t,
            "accumulator updates must be time-ordered"
        );
        self.integral += self.last_v * (time - self.last_t);
        self.last_t = time;
        self.last_v = value;
        if value > self.max {
            self.max = value;
        }
    }

    /// Integral of the step function from time 0 through `end` (the
    /// current value extends to `end` if it lies past the last change).
    pub fn integral_to(&self, end: Seconds) -> f64 {
        if end <= self.last_t {
            return self.integral;
        }
        self.integral + self.last_v * (end - self.last_t)
    }

    /// Maximum value ever recorded (0 if none).
    pub fn max_value(&self) -> f64 {
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series() -> StepSeries {
        let mut s = StepSeries::new();
        s.record(0.0, 1.0);
        s.record(10.0, 3.0);
        s.record(20.0, 0.0);
        s
    }

    #[test]
    fn value_lookup() {
        let s = series();
        assert_eq!(s.value_at(-1.0), 0.0);
        assert_eq!(s.value_at(0.0), 1.0);
        assert_eq!(s.value_at(9.999), 1.0);
        assert_eq!(s.value_at(10.0), 3.0);
        assert_eq!(s.value_at(25.0), 0.0);
    }

    #[test]
    fn integral_is_exact() {
        let s = series();
        assert_eq!(s.integral(0.0, 20.0), 10.0 + 30.0);
        assert_eq!(s.integral(5.0, 15.0), 5.0 + 15.0);
        assert_eq!(s.integral(20.0, 100.0), 0.0);
        assert_eq!(s.integral(10.0, 10.0), 0.0);
    }

    #[test]
    fn redundant_updates_collapse() {
        let mut s = StepSeries::new();
        s.record(0.0, 0.0); // implicit zero: dropped
        s.record(5.0, 2.0);
        s.record(7.0, 2.0); // no change: dropped
        assert_eq!(s.points().len(), 1);
    }

    #[test]
    fn same_instant_update_supersedes() {
        let mut s = StepSeries::new();
        s.record(5.0, 2.0);
        s.record(5.0, 4.0);
        assert_eq!(s.points(), &[(5.0, 4.0)]);
        assert_eq!(s.value_at(5.0), 4.0);
        // Superseding back to the previous value removes the point.
        let mut s = StepSeries::new();
        s.record(1.0, 1.0);
        s.record(5.0, 2.0);
        s.record(5.0, 1.0);
        assert_eq!(s.points(), &[(1.0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn out_of_order_updates_panic() {
        let mut s = StepSeries::new();
        s.record(10.0, 1.0);
        s.record(5.0, 2.0);
    }

    #[test]
    fn accumulator_matches_series_integral_and_max() {
        let updates = [
            (0.0, 1.0),
            (10.0, 3.0),
            (10.0, 4.0),
            (20.0, 0.0),
            (25.0, 2.0),
        ];
        let mut s = StepSeries::new();
        let mut a = StepAccum::new();
        for &(t, v) in &updates {
            s.record(t, v);
            a.record(t, v);
        }
        assert_eq!(a.integral_to(30.0), s.integral(0.0, 30.0));
        assert_eq!(a.integral_to(25.0), s.integral(0.0, 25.0));
        assert_eq!(a.max_value(), s.max_value());
        // Truncation before the last change keeps the closed integral.
        assert_eq!(a.integral_to(1.0), a.integral_to(25.0));
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn accumulator_rejects_backwards_time() {
        let mut a = StepAccum::new();
        a.record(10.0, 1.0);
        a.record(5.0, 2.0);
    }

    #[test]
    fn sampling_and_max() {
        let s = series();
        assert_eq!(s.max_value(), 3.0);
        let samples = s.sample(0.0, 20.0, 5);
        assert_eq!(samples.len(), 5);
        assert_eq!(samples[0], (0.0, 1.0));
        assert_eq!(samples[2], (10.0, 3.0));
        assert_eq!(samples[4], (20.0, 0.0));
    }
}
