//! Campaign-level metrics: the quantities the paper's tables report.
//!
//! Definitions (see DESIGN.md §1):
//!
//! * **computational efficiency** `E_comp = Σ work_done / Σ busy core-seconds`
//!   — useful exclusive-equivalent work per consumed machine time. Exclusive
//!   scheduling yields ≤ 1.0; co-allocation pushes it above 1.0 when paired
//!   jobs' combined throughput beats one exclusive job.
//! * **scheduling efficiency** `E_sched = Σ work_done / (makespan × cores)`
//!   — effective utilization of the whole machine over the campaign.
//!
//! The paper reports both as *gains relative to the standard-allocation
//! baseline* (+19% and +25.2%); [`crate::stats::relative_gain`] computes
//! that comparison.

use crate::record::JobRecord;
use crate::stats::Summary;
use nodeshare_cluster::ClusterSpec;
use nodeshare_workload::Seconds;
use serde::{Deserialize, Serialize};

/// Aggregated results of one simulated campaign.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CampaignMetrics {
    /// Finished jobs.
    pub jobs: usize,
    /// Jobs killed at their walltime limit.
    pub killed: usize,
    /// Total node-failure requeues across the campaign.
    pub total_restarts: u64,
    /// Campaign makespan: last finish − first submit.
    pub makespan: Seconds,
    /// Total useful work delivered, exclusive core-seconds.
    pub work_core_seconds: f64,
    /// Core-seconds during which nodes were occupied (integrated by the
    /// engine).
    pub busy_core_seconds: f64,
    /// Core-seconds during which occupied nodes hosted two jobs.
    pub shared_core_seconds: f64,
    /// `work / busy` — see module docs.
    pub computational_efficiency: f64,
    /// `work / (makespan × total cores)` — see module docs.
    pub scheduling_efficiency: f64,
    /// Mean core utilization over the makespan (`busy / (makespan × cores)`).
    pub utilization: f64,
    /// Queue-wait summary, seconds.
    pub wait: Summary,
    /// Bounded-slowdown summary.
    pub bounded_slowdown: Summary,
    /// Runtime-dilation summary (1.0 = exclusive speed).
    pub dilation: Summary,
    /// Mean response (turnaround) time, seconds.
    pub mean_response: Seconds,
    /// Fraction of busy node time spent in shared occupancy.
    pub shared_fraction: f64,
}

impl CampaignMetrics {
    /// Computes campaign metrics from job records plus the engine's
    /// integrated occupancy.
    ///
    /// `busy_core_seconds` / `shared_core_seconds` come from the engine's
    /// time integration; they cannot be reconstructed from records alone
    /// once allocations overlap.
    pub fn compute(
        records: &[JobRecord],
        spec: &ClusterSpec,
        busy_core_seconds: f64,
        shared_core_seconds: f64,
    ) -> CampaignMetrics {
        let jobs = records.len();
        let killed = records.iter().filter(|r| r.killed).count();
        let total_restarts = records.iter().map(|r| r.restarts as u64).sum();
        let first_submit = records
            .iter()
            .map(|r| r.submit)
            // detlint: allow(D4, min fold is order-insensitive)
            .fold(f64::INFINITY, f64::min);
        // detlint: allow(D4, max fold is order-insensitive)
        let last_finish = records.iter().map(|r| r.finish).fold(0.0, f64::max);
        let makespan = if jobs == 0 {
            0.0
        } else {
            last_finish - first_submit
        };
        let cores_per_node = spec.node.cores() as f64;
        let work_core_seconds: f64 = records
            .iter()
            .map(|r| r.work_done_node_seconds() * cores_per_node)
            // detlint: allow(D4, records are in canonical job order after the OrderedTable merge; serial sum is deterministic)
            .sum();
        let total_core_time = makespan * spec.total_cores() as f64;

        let waits: Vec<f64> = records.iter().map(JobRecord::wait).collect();
        let slowdowns: Vec<f64> = records.iter().map(JobRecord::bounded_slowdown).collect();
        let dilations: Vec<f64> = records
            .iter()
            .filter(|r| !r.killed)
            .map(JobRecord::dilation)
            .collect();
        let mean_response = if jobs == 0 {
            0.0
        } else {
            // detlint: allow(D4, records are in canonical job order; serial sum is deterministic)
            records.iter().map(JobRecord::response).sum::<f64>() / jobs as f64
        };

        CampaignMetrics {
            jobs,
            killed,
            total_restarts,
            makespan,
            work_core_seconds,
            busy_core_seconds,
            shared_core_seconds,
            computational_efficiency: if busy_core_seconds > 0.0 {
                work_core_seconds / busy_core_seconds
            } else {
                0.0
            },
            scheduling_efficiency: if total_core_time > 0.0 {
                work_core_seconds / total_core_time
            } else {
                0.0
            },
            utilization: if total_core_time > 0.0 {
                busy_core_seconds / total_core_time
            } else {
                0.0
            },
            wait: Summary::of(&waits),
            bounded_slowdown: Summary::of(&slowdowns),
            dilation: Summary::of(&dilations),
            mean_response,
            shared_fraction: if busy_core_seconds > 0.0 {
                shared_core_seconds / busy_core_seconds
            } else {
                0.0
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodeshare_cluster::JobId;
    use nodeshare_perf::AppId;

    fn rec(id: u64, submit: f64, start: f64, finish: f64, nodes: u32, excl: f64) -> JobRecord {
        JobRecord {
            id: JobId(id),
            app: AppId(0),
            nodes,
            submit,
            start,
            finish,
            runtime_exclusive: excl,
            walltime_estimate: excl * 2.0,
            shared_node_seconds: 0.0,
            killed: false,
            shared_alloc: false,
            restarts: 0,
            salvaged_work: 0.0,
            user: 0,
        }
    }

    fn spec() -> ClusterSpec {
        ClusterSpec::test_small() // 4 nodes × 4 cores
    }

    #[test]
    fn exclusive_campaign_has_unit_computational_efficiency() {
        // Two jobs, each 1 node × 100 s of work, run back to back at
        // exclusive speed: busy = work.
        let records = vec![
            rec(1, 0.0, 0.0, 100.0, 1, 100.0),
            rec(2, 0.0, 100.0, 200.0, 1, 100.0),
        ];
        let busy = 2.0 * 100.0 * 4.0; // node-runs × cores
        let m = CampaignMetrics::compute(&records, &spec(), busy, 0.0);
        assert!((m.computational_efficiency - 1.0).abs() < 1e-12);
        assert_eq!(m.makespan, 200.0);
        // 800 work core-seconds over 200 s × 16 cores.
        assert!((m.scheduling_efficiency - 0.25).abs() < 1e-12);
        assert!((m.utilization - 0.25).abs() < 1e-12);
        assert_eq!(m.jobs, 2);
        assert_eq!(m.killed, 0);
        assert_eq!(m.wait.max, 100.0);
    }

    #[test]
    fn sharing_raises_computational_efficiency() {
        // Two jobs co-resident on one node for 125 s each (dilation 1.25):
        // work = 2 × 100 node-s, busy = 125 node-s (the node is busy once).
        let records = vec![
            rec(1, 0.0, 0.0, 125.0, 1, 100.0),
            rec(2, 0.0, 0.0, 125.0, 1, 100.0),
        ];
        let busy = 125.0 * 4.0;
        let m = CampaignMetrics::compute(&records, &spec(), busy, busy);
        assert!((m.computational_efficiency - 1.6).abs() < 1e-12);
        assert_eq!(m.shared_fraction, 1.0);
        assert!((m.dilation.mean - 1.25).abs() < 1e-12);
    }

    #[test]
    fn killed_jobs_count_as_waste() {
        let mut r = rec(1, 0.0, 0.0, 100.0, 2, 500.0);
        r.killed = true;
        let m = CampaignMetrics::compute(&[r], &spec(), 800.0, 0.0);
        assert_eq!(m.work_core_seconds, 0.0);
        assert_eq!(m.computational_efficiency, 0.0);
        assert_eq!(m.killed, 1);
        // Killed jobs are excluded from dilation stats.
        assert_eq!(m.dilation.n, 0);
    }

    #[test]
    fn empty_campaign_is_all_zero() {
        let m = CampaignMetrics::compute(&[], &spec(), 0.0, 0.0);
        assert_eq!(m.jobs, 0);
        assert_eq!(m.makespan, 0.0);
        assert_eq!(m.scheduling_efficiency, 0.0);
        assert_eq!(m.utilization, 0.0);
    }

    #[test]
    fn makespan_spans_submit_to_finish() {
        let records = vec![rec(1, 50.0, 60.0, 160.0, 1, 100.0)];
        let m = CampaignMetrics::compute(&records, &spec(), 400.0, 0.0);
        assert_eq!(m.makespan, 110.0);
        assert_eq!(m.mean_response, 110.0);
    }
}
