//! Small summary-statistics helpers shared by the metric computations.
//!
//! # NaN policy
//!
//! These helpers never *introduce* NaN: every function returns finite
//! numbers for finite inputs, and the degenerate cases are defined rather
//! than poisonous (`Summary::of(&[])` and [`mean`] of an empty sample are
//! all-zero, [`relative_gain`] against a zero baseline is 0). NaN *inputs*
//! are the caller's bug: sorting uses [`f64::total_cmp`], so a NaN sample
//! never panics and deterministically sorts after `+∞` (contaminating
//! `max`/`mean` but nothing else). Simulation outputs are finite by
//! construction, so the engine-facing crates do not pre-filter.

use serde::{Deserialize, Serialize};

/// Five-number-ish summary of a sample.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean (0 for empty samples).
    pub mean: f64,
    /// Median.
    pub median: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Computes the summary of a sample (empty samples give all-zero).
    pub fn of(values: &[f64]) -> Summary {
        if values.is_empty() {
            return Summary {
                n: 0,
                mean: 0.0,
                median: 0.0,
                p95: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        let mut sorted: Vec<f64> = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        Summary {
            n: sorted.len(),
            // detlint: allow(D4, input sorted by total_cmp just above; serial sum is deterministic)
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
            median: percentile_sorted(&sorted, 0.50),
            p95: percentile_sorted(&sorted, 0.95),
            min: sorted[0],
            // detlint: allow(D5, empty input returned early above)
            max: *sorted.last().expect("non-empty"),
        }
    }
}

/// Linear-interpolated percentile of an ascending-sorted slice.
///
/// # Panics
/// Panics on an empty slice or `q` outside `[0, 1]`.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty sample");
    assert!((0.0..=1.0).contains(&q), "quantile out of range");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Mean of a sample (0 for empty).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        // detlint: allow(D4, caller passes canonically ordered values; serial sum is deterministic)
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Relative change `(new − base) / base`, as used in "X% better than the
/// baseline" statements. Returns 0 when the base is 0.
pub fn relative_gain(new: f64, base: f64) -> f64 {
    if base == 0.0 {
        0.0
    } else {
        (new - base) / base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[4.0, 1.0, 3.0, 2.0, 5.0]);
        assert_eq!(s.n, 5);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert!((s.p95 - 4.8).abs() < 1e-12);
    }

    #[test]
    fn summary_of_empty_is_zero() {
        let s = Summary::of(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile_sorted(&v, 0.0), 10.0);
        assert_eq!(percentile_sorted(&v, 1.0), 40.0);
        assert!((percentile_sorted(&v, 0.5) - 25.0).abs() < 1e-12);
        assert_eq!(percentile_sorted(&[7.0], 0.9), 7.0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn percentile_rejects_empty() {
        percentile_sorted(&[], 0.5);
    }

    #[test]
    fn gain_math() {
        assert!((relative_gain(1.19, 1.0) - 0.19).abs() < 1e-12);
        assert_eq!(relative_gain(5.0, 0.0), 0.0);
        assert!(relative_gain(0.8, 1.0) < 0.0);
    }

    #[test]
    fn mean_handles_empty() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }
}
