//! Fixed-bucket histograms for distribution read-outs (waits, dilations,
//! slowdowns) with text rendering for the experiment binaries.

use serde::{Deserialize, Serialize};

/// Bucket layout of a histogram.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Buckets {
    /// `count` equal-width buckets over `[lo, hi)`.
    Linear {
        /// Lower bound of the first bucket.
        lo: f64,
        /// Upper bound of the last bucket.
        hi: f64,
        /// Number of buckets.
        count: usize,
    },
    /// Buckets growing geometrically from `first` by `ratio`,
    /// `count` of them, starting at `lo`.
    Geometric {
        /// Lower bound of the first bucket.
        lo: f64,
        /// Width of the first bucket.
        first: f64,
        /// Width ratio between consecutive buckets (> 1).
        ratio: f64,
        /// Number of buckets.
        count: usize,
    },
}

impl Buckets {
    fn edges(&self) -> Vec<f64> {
        match *self {
            Buckets::Linear { lo, hi, count } => {
                assert!(count > 0 && hi > lo, "degenerate linear buckets");
                (0..=count)
                    .map(|i| lo + (hi - lo) * i as f64 / count as f64)
                    .collect()
            }
            Buckets::Geometric {
                lo,
                first,
                ratio,
                count,
            } => {
                assert!(
                    count > 0 && first > 0.0 && ratio > 1.0,
                    "degenerate geometric buckets"
                );
                let mut edges = Vec::with_capacity(count + 1);
                let mut edge = lo;
                let mut width = first;
                edges.push(edge);
                for _ in 0..count {
                    edge += width;
                    width *= ratio;
                    edges.push(edge);
                }
                edges
            }
        }
    }
}

/// A populated histogram.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    edges: Vec<f64>,
    counts: Vec<u64>,
    /// Samples below the first edge.
    pub underflow: u64,
    /// Samples at or above the last edge.
    pub overflow: u64,
}

impl Histogram {
    /// Builds a histogram of `values` with the given bucket layout.
    pub fn of(values: impl IntoIterator<Item = f64>, buckets: &Buckets) -> Histogram {
        let edges = buckets.edges();
        let mut h = Histogram {
            counts: vec![0; edges.len() - 1],
            edges,
            underflow: 0,
            overflow: 0,
        };
        for v in values {
            h.add(v);
        }
        h
    }

    /// Adds one sample.
    pub fn add(&mut self, v: f64) {
        if v < self.edges[0] {
            self.underflow += 1;
            return;
        }
        match self.edges.binary_search_by(|e| e.total_cmp(&v)) {
            Ok(i) if i == self.edges.len() - 1 => self.overflow += 1,
            Ok(i) => self.counts[i] += 1,
            Err(i) if i >= self.edges.len() => self.overflow += 1,
            Err(i) => self.counts[i - 1] += 1,
        }
    }

    /// Reassembles a histogram from raw parts: `edges.len() - 1` bucket
    /// counts plus under/overflow. The constructor for converters that
    /// hold already-binned data (see [`Histogram::from_obs`]).
    ///
    /// # Panics
    /// Panics unless there are at least two strictly ascending edges and
    /// exactly one count per bucket.
    pub fn from_parts(
        edges: Vec<f64>,
        counts: Vec<u64>,
        underflow: u64,
        overflow: u64,
    ) -> Histogram {
        assert!(edges.len() >= 2, "degenerate histogram: need two edges");
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "edges must be strictly ascending"
        );
        assert_eq!(
            counts.len(),
            edges.len() - 1,
            "one count per bucket required"
        );
        Histogram {
            edges,
            counts,
            underflow,
            overflow,
        }
    }

    /// Converts a live `nodeshare-obs` runtime histogram into this
    /// analysis type, so telemetry distributions can reuse the rendering
    /// and summary code the experiment binaries already have.
    ///
    /// The obs histogram's upper bounds become this histogram's edges:
    /// its first bucket (`value <= bounds[0]`) maps to `underflow` and its
    /// `+Inf` bucket to `overflow`. Boundary semantics differ by a
    /// half-open flip (obs buckets are `(lo, hi]`, these are `[lo, hi)`),
    /// which only matters for samples landing exactly on an edge.
    ///
    /// # Panics
    /// Panics when the obs histogram has fewer than two bounds.
    pub fn from_obs(h: &nodeshare_obs::Histogram) -> Histogram {
        let edges = h.bounds().to_vec();
        let mut counts = h.bucket_counts();
        // detlint: allow(D5, obs histograms always end with the +Inf bucket)
        let overflow = counts.pop().expect("obs histograms have an +Inf bucket");
        let underflow = counts.remove(0);
        Histogram::from_parts(edges, counts, underflow, overflow)
    }

    /// `(lo, hi, count)` per bucket.
    pub fn buckets(&self) -> impl Iterator<Item = (f64, f64, u64)> + '_ {
        self.edges
            .windows(2)
            .zip(&self.counts)
            .map(|(w, &c)| (w[0], w[1], c))
    }

    /// Total samples including under/overflow.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Renders an ASCII bar chart, one line per bucket.
    pub fn render(&self, width: usize) -> String {
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        if self.underflow > 0 {
            out.push_str(&format!("{:>18}  {}\n", "< lo", self.underflow));
        }
        for (lo, hi, c) in self.buckets() {
            let bar = "#".repeat((c as usize * width).div_ceil(max as usize).min(width));
            out.push_str(&format!("[{lo:>7.2},{hi:>7.2})  {c:>6} {bar}\n"));
        }
        if self.overflow > 0 {
            out.push_str(&format!("{:>18}  {}\n", ">= hi", self.overflow));
        }
        out
    }
}

impl From<&nodeshare_obs::Histogram> for Histogram {
    fn from(h: &nodeshare_obs::Histogram) -> Histogram {
        Histogram::from_obs(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_buckets_count_correctly() {
        let h = Histogram::of(
            [0.5, 1.5, 1.6, 2.5, 9.9, 10.0, -1.0],
            &Buckets::Linear {
                lo: 0.0,
                hi: 10.0,
                count: 10,
            },
        );
        let counts: Vec<u64> = h.buckets().map(|(_, _, c)| c).collect();
        assert_eq!(counts[0], 1);
        assert_eq!(counts[1], 2);
        assert_eq!(counts[2], 1);
        assert_eq!(counts[9], 1);
        assert_eq!(h.underflow, 1);
        assert_eq!(h.overflow, 1);
        assert_eq!(h.total(), 7);
    }

    #[test]
    fn geometric_buckets_grow() {
        let b = Buckets::Geometric {
            lo: 1.0,
            first: 0.1,
            ratio: 2.0,
            count: 4,
        };
        let h = Histogram::of([1.05, 1.25, 1.6, 2.0], &b);
        let edges: Vec<(f64, f64, u64)> = h.buckets().collect();
        // Edges: 1.0, 1.1, 1.3, 1.7, 2.5
        assert!((edges[0].1 - 1.1).abs() < 1e-12);
        assert!((edges[3].1 - 2.5).abs() < 1e-12);
        assert_eq!(edges[0].2, 1);
        assert_eq!(edges[1].2, 1);
        assert_eq!(edges[2].2, 1);
        assert_eq!(edges[3].2, 1);
    }

    #[test]
    fn exact_edge_values_go_to_the_right_bucket() {
        let h = Histogram::of(
            [0.0, 1.0, 2.0],
            &Buckets::Linear {
                lo: 0.0,
                hi: 2.0,
                count: 2,
            },
        );
        let counts: Vec<u64> = h.buckets().map(|(_, _, c)| c).collect();
        assert_eq!(counts, vec![1, 1]); // 0.0 → [0,1), 1.0 → [1,2)
        assert_eq!(h.overflow, 1); // 2.0 == hi
    }

    #[test]
    fn render_produces_bars() {
        let h = Histogram::of(
            [1.0, 1.0, 1.0, 3.0],
            &Buckets::Linear {
                lo: 0.0,
                hi: 4.0,
                count: 4,
            },
        );
        let s = h.render(20);
        assert!(s.contains('#'));
        assert_eq!(s.lines().count(), 4);
    }

    #[test]
    fn from_obs_preserves_counts_and_edges() {
        let o = nodeshare_obs::Histogram::detached(&[1.0, 2.0, 5.0]);
        o.observe(0.5); // <= 1.0 → underflow here
        o.observe(1.5);
        o.observe(1.5);
        o.observe(4.0);
        o.observe(100.0); // > 5.0 → overflow here
        let h = Histogram::from_obs(&o);
        assert_eq!(h.underflow, 1);
        assert_eq!(h.overflow, 1);
        let buckets: Vec<(f64, f64, u64)> = h.buckets().collect();
        assert_eq!(buckets, vec![(1.0, 2.0, 2), (2.0, 5.0, 1)]);
        assert_eq!(h.total(), o.count());
        let via_from: Histogram = (&o).into();
        assert_eq!(via_from, h);
        assert!(h.render(10).contains('#'));
    }

    #[test]
    #[should_panic(expected = "two edges")]
    fn from_obs_rejects_single_bound() {
        let o = nodeshare_obs::Histogram::detached(&[1.0]);
        Histogram::from_obs(&o);
    }

    #[test]
    #[should_panic(expected = "one count per bucket")]
    fn from_parts_validates_shape() {
        Histogram::from_parts(vec![0.0, 1.0, 2.0], vec![1], 0, 0);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn degenerate_layout_panics() {
        Histogram::of(
            [1.0],
            &Buckets::Linear {
                lo: 1.0,
                hi: 1.0,
                count: 3,
            },
        );
    }
}
