//! The event queue: a binary heap ordered by `(time, sequence)`.
//!
//! The sequence number makes simultaneous events fire in insertion order,
//! which — together with seeded RNG streams — makes every simulation
//! bit-reproducible.

use nodeshare_cluster::JobId;
use nodeshare_workload::Seconds;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A simulation event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// A job arrives (index into the workload's job list).
    Arrival(usize),
    /// A running job finishes its work. Stale if the job was re-rated
    /// after this event was scheduled (generation mismatch) — stale
    /// completions are skipped.
    Completion {
        /// The finishing job.
        job: JobId,
        /// Progress-table generation at scheduling time.
        generation: u64,
    },
    /// A running job reaches its walltime limit and is killed unless it
    /// already completed. Stale if the job was requeued and restarted
    /// since (attempt mismatch).
    WalltimeKill {
        /// The job to check.
        job: JobId,
        /// Attempt number the kill was armed for.
        attempt: u32,
    },
    /// Periodic scheduler invocation (mirrors SLURM's backfill interval).
    SchedulerTick,
    /// A node fails: resident jobs are requeued, the node goes down.
    NodeFail(nodeshare_cluster::NodeId),
    /// A failed node returns to service.
    NodeRepair(nodeshare_cluster::NodeId),
    /// A maintenance window begins: the node drains.
    DrainStart(nodeshare_cluster::NodeId),
    /// A maintenance window ends: the node resumes.
    DrainEnd(nodeshare_cluster::NodeId),
    /// Capture an occupancy snapshot (index into `SimConfig::snapshot_times`).
    Snapshot(usize),
}

#[derive(Clone, Debug)]
struct Entry {
    time: Seconds,
    seq: u64,
    event: Event,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Entry {}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Deterministic earliest-first event queue.
#[derive(Clone, Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Entry>,
    next_seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedules `event` at `time`.
    ///
    /// # Panics
    /// Panics on a non-finite time — that is always an engine bug.
    pub fn push(&mut self, time: Seconds, event: Event) {
        assert!(time.is_finite(), "event scheduled at non-finite time");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(Seconds, Event)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// Time of the next event without removing it.
    pub fn peek_time(&self) -> Option<Seconds> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(5.0, Event::SchedulerTick);
        q.push(1.0, Event::Arrival(0));
        q.push(3.0, Event::Arrival(1));
        assert_eq!(q.len(), 3);
        assert_eq!(q.peek_time(), Some(1.0));
        assert_eq!(q.pop(), Some((1.0, Event::Arrival(0))));
        assert_eq!(q.pop(), Some((3.0, Event::Arrival(1))));
        assert_eq!(q.pop(), Some((5.0, Event::SchedulerTick)));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn simultaneous_events_fire_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.push(2.0, Event::Arrival(i));
        }
        for i in 0..10 {
            assert_eq!(q.pop(), Some((2.0, Event::Arrival(i))));
        }
    }

    #[test]
    fn interleaved_pushes_stay_deterministic() {
        let mut q = EventQueue::new();
        q.push(1.0, Event::Arrival(0));
        q.pop();
        q.push(4.0, Event::Arrival(1));
        q.push(4.0, Event::Arrival(2));
        q.push(2.0, Event::Arrival(3));
        assert_eq!(q.pop(), Some((2.0, Event::Arrival(3))));
        assert_eq!(q.pop(), Some((4.0, Event::Arrival(1))));
        assert_eq!(q.pop(), Some((4.0, Event::Arrival(2))));
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn rejects_nan_times() {
        EventQueue::new().push(f64::NAN, Event::SchedulerTick);
    }
}
