//! The event queue: deterministic earliest-first ordering behind two
//! interchangeable backends — a classic binary heap (the reference) and a
//! bucketed calendar queue (the default, O(1) amortized at million-event
//! scale).
//!
//! Ordering is by `(time, band, seq)`:
//!
//! * **Band 0 — arrivals.** [`Event::Arrival`] entries are keyed by their
//!   arrival index, so at equal times arrivals fire first, in index
//!   order. This reproduces the materialized engine's historical order
//!   (all arrivals were heap-pushed before any other event, occupying the
//!   lowest sequence numbers) *independently of when the arrival was
//!   pushed* — which is what lets a streaming job source inject arrivals
//!   lazily and still produce bit-identical simulations.
//! * **Band 1 — everything else.** Keyed by a monotone insertion counter,
//!   so simultaneous non-arrival events fire in insertion order, exactly
//!   as the original `(time, seq)` heap did.
//!
//! Together with seeded RNG streams this makes every simulation
//! bit-reproducible, whichever backend runs it.

use nodeshare_cluster::JobId;
use nodeshare_workload::Seconds;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A simulation event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// A job arrives (global arrival index, in submission order).
    Arrival(usize),
    /// A running job finishes its work. Stale if the job was re-rated
    /// after this event was scheduled (generation mismatch) — stale
    /// completions are skipped.
    Completion {
        /// The finishing job.
        job: JobId,
        /// Progress-table generation at scheduling time.
        generation: u64,
    },
    /// A running job reaches its walltime limit and is killed unless it
    /// already completed. Stale if the job restarted or reshaped since
    /// this kill was armed (arm-stamp mismatch with the running job's
    /// `kill_arm`).
    WalltimeKill {
        /// The job to check.
        job: JobId,
        /// Arm stamp the kill was scheduled under.
        arm: u64,
    },
    /// Periodic scheduler invocation (mirrors SLURM's backfill interval).
    SchedulerTick,
    /// A node fails: resident jobs are requeued, the node goes down.
    NodeFail(nodeshare_cluster::NodeId),
    /// A failed node returns to service.
    NodeRepair(nodeshare_cluster::NodeId),
    /// A maintenance window begins: the node drains.
    DrainStart(nodeshare_cluster::NodeId),
    /// A maintenance window ends: the node resumes.
    DrainEnd(nodeshare_cluster::NodeId),
    /// Capture an occupancy snapshot (index into `SimConfig::snapshot_times`).
    Snapshot(usize),
}

/// Which data structure backs an [`EventQueue`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum QueueBackend {
    /// Bucketed calendar queue (R. Brown, CACM 1988): O(1) amortized
    /// push/pop when tuned, self-resizing. The default.
    #[default]
    Calendar,
    /// `std::collections::BinaryHeap` — the original implementation,
    /// retained as the differential reference and for benchmarking.
    BinaryHeap,
}

#[derive(Clone, Debug)]
struct Entry {
    time: Seconds,
    /// 0 = arrival, 1 = everything else. See the module docs.
    band: u8,
    seq: u64,
    event: Event,
}

impl Entry {
    #[inline]
    fn key_cmp(&self, other: &Self) -> Ordering {
        self.time
            .total_cmp(&other.time)
            .then_with(|| self.band.cmp(&other.band))
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.band == other.band && self.seq == other.seq
    }
}
impl Eq for Entry {}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other.key_cmp(self)
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Deterministic earliest-first event queue.
#[derive(Clone, Debug)]
pub struct EventQueue {
    backend: Backend,
    next_seq: u64,
}

#[derive(Clone, Debug)]
enum Backend {
    Heap(BinaryHeap<Entry>),
    Calendar(Calendar),
}

impl Default for EventQueue {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl EventQueue {
    /// An empty queue on the default (calendar) backend.
    pub fn new() -> Self {
        EventQueue::with_backend(QueueBackend::Calendar)
    }

    /// An empty queue on an explicit backend.
    pub fn with_backend(backend: QueueBackend) -> Self {
        EventQueue {
            backend: match backend {
                QueueBackend::Calendar => Backend::Calendar(Calendar::new()),
                QueueBackend::BinaryHeap => Backend::Heap(BinaryHeap::new()),
            },
            next_seq: 0,
        }
    }

    /// Which backend this queue runs on.
    pub fn backend(&self) -> QueueBackend {
        match self.backend {
            Backend::Heap(_) => QueueBackend::BinaryHeap,
            Backend::Calendar(_) => QueueBackend::Calendar,
        }
    }

    /// Schedules `event` at `time`.
    ///
    /// [`Event::Arrival`] entries are ordered by their arrival index
    /// (band 0); everything else by insertion order (band 1). Callers
    /// must push arrivals with nondecreasing `(time, index)` — the
    /// engine's job-source plumbing guarantees this.
    ///
    /// # Panics
    /// Panics on a non-finite time — that is always an engine bug.
    pub fn push(&mut self, time: Seconds, event: Event) {
        assert!(time.is_finite(), "event scheduled at non-finite time");
        let (band, seq) = match &event {
            Event::Arrival(i) => (0u8, *i as u64),
            _ => {
                let s = self.next_seq;
                self.next_seq += 1;
                (1u8, s)
            }
        };
        let entry = Entry {
            time,
            band,
            seq,
            event,
        };
        match &mut self.backend {
            Backend::Heap(h) => h.push(entry),
            Backend::Calendar(c) => c.push(entry),
        }
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(Seconds, Event)> {
        match &mut self.backend {
            Backend::Heap(h) => h.pop().map(|e| (e.time, e.event)),
            Backend::Calendar(c) => c.pop().map(|e| (e.time, e.event)),
        }
    }

    /// Time of the next event without removing it.
    pub fn peek_time(&self) -> Option<Seconds> {
        match &self.backend {
            Backend::Heap(h) => h.peek().map(|e| e.time),
            Backend::Calendar(c) => c.peek_time(),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match &self.backend {
            Backend::Heap(h) => h.len(),
            Backend::Calendar(c) => c.len,
        }
    }

    /// True when no events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Calendar-queue sizing bounds. The bucket count tracks the live entry
/// count between these, keeping pops O(1) amortized without letting a
/// million-entry queue allocate unbounded bucket headers.
const MIN_BUCKETS: usize = 16;
const MAX_BUCKETS: usize = 1 << 17;

/// A classic bucketed calendar queue: an entry at time `t` lives in
/// "year" `vb = floor(t / width)`, stored in bucket `vb mod nbuckets`,
/// and pops walk the bucket "days" year by year looking for the minimum
/// key. Within a bucket the minimum is selected by the full
/// `(time, band, seq)` key, so the pop order is *exactly* the reference
/// heap's — equal times share a year (hence a bucket), which makes the
/// tie-break purely local.
///
/// Floating point cannot perturb the order: membership is decided by the
/// single deterministic function `floor(t / width)` and scanned years
/// are compared as integers, never against accumulated time windows. An
/// entry's year is computed the same way at push, scan, and resize; the
/// cursor holds the minimum live year (pops remove the global minimum
/// and `floor` is monotone, so no live entry can sit in an earlier
/// year). When a whole year-cycle comes up dry — the next event is more
/// than `nbuckets` years ahead, or the year indices are too large for
/// increments to advance — a direct O(n) search finds the true minimum.
#[derive(Clone, Debug)]
struct Calendar {
    buckets: Vec<Vec<Entry>>,
    /// Seconds each bucket-year spans.
    width: f64,
    len: usize,
    /// Year index (`floor(time / width)`) the next pop scans first.
    /// Invariant: no live entry has a smaller year.
    cur_vb: f64,
}

impl Calendar {
    fn new() -> Self {
        Calendar {
            buckets: vec![Vec::new(); MIN_BUCKETS],
            width: 1.0,
            len: 0,
            cur_vb: 0.0,
        }
    }

    /// The year index of `time` — the one membership function every
    /// decision goes through.
    #[inline]
    fn vb_of(&self, time: f64) -> f64 {
        (time / self.width).floor()
    }

    /// The bucket storing year `vb`.
    #[inline]
    fn bucket_at(&self, vb: f64) -> usize {
        let n = self.buckets.len() as f64;
        // `rem_euclid` is in [0, n); the cast saturates defensively.
        (vb.rem_euclid(n) as usize).min(self.buckets.len() - 1)
    }

    fn push(&mut self, e: Entry) {
        let vb = self.vb_of(e.time);
        if self.len == 0 || vb < self.cur_vb {
            // First entry, or pushed behind the scan anchor: re-anchor
            // so the scan cannot skip it.
            self.cur_vb = vb;
        }
        let b = self.bucket_at(vb);
        self.buckets[b].push(e);
        self.len += 1;
        if self.len > 2 * self.buckets.len() && self.buckets.len() < MAX_BUCKETS {
            self.resize();
        }
    }

    fn pop(&mut self) -> Option<Entry> {
        let (bucket, idx, year) = self.locate()?;
        self.cur_vb = year;
        let e = self.buckets[bucket].swap_remove(idx);
        self.len -= 1;
        if self.len * 8 < self.buckets.len() && self.buckets.len() > MIN_BUCKETS {
            self.resize();
        }
        Some(e)
    }

    fn peek_time(&self) -> Option<f64> {
        self.locate()
            .map(|(bucket, idx, _)| self.buckets[bucket][idx].time)
    }

    /// Finds the minimum-key entry: `(bucket, index-in-bucket, year)`.
    /// One cycle over the bucket days starting at the cursor year; on a
    /// dry cycle, a direct search over every entry.
    fn locate(&self) -> Option<(usize, usize, f64)> {
        if self.len == 0 {
            return None;
        }
        let n = self.buckets.len();
        let mut year = self.cur_vb;
        for _ in 0..n {
            let bucket = self.bucket_at(year);
            let day = &self.buckets[bucket];
            let mut best: Option<usize> = None;
            for (i, e) in day.iter().enumerate() {
                // `<=` rather than `==`: entries cannot live before the
                // cursor year (see the invariant), so this only ever
                // admits the scanned year — but stays safe if the
                // invariant were perturbed.
                if self.vb_of(e.time) <= year
                    && best.is_none_or(|b| e.key_cmp(&day[b]) == Ordering::Less)
                {
                    best = Some(i);
                }
            }
            if let Some(i) = best {
                return Some((bucket, i, year));
            }
            year += 1.0;
        }
        // Dry cycle: direct search. Equal times share a bucket, so the
        // full-key minimum over all buckets is exact.
        let mut best: Option<(usize, usize)> = None;
        for (b, day) in self.buckets.iter().enumerate() {
            for (i, e) in day.iter().enumerate() {
                if best.is_none_or(|(bb, bi)| e.key_cmp(&self.buckets[bb][bi]) == Ordering::Less) {
                    best = Some((b, i));
                }
            }
        }
        // detlint: allow(D5, guarded by the len > 0 check above)
        let (b, i) = best.expect("len > 0 means an entry exists");
        Some((b, i, self.vb_of(self.buckets[b][i].time)))
    }

    /// Rebuilds the bucket array sized to the live entry count, with the
    /// width re-estimated from the current time distribution. Purely a
    /// function of queue contents — deterministic across runs.
    fn resize(&mut self) {
        let n_new = (self.len.max(1))
            .next_power_of_two()
            .clamp(MIN_BUCKETS, MAX_BUCKETS);
        let mut entries: Vec<Entry> = Vec::with_capacity(self.len);
        for day in &mut self.buckets {
            entries.append(day);
        }
        self.width = estimate_width(&entries).unwrap_or(self.width);
        self.buckets = vec![Vec::new(); n_new];
        let min_time = entries.iter().map(|e| e.time).fold(f64::INFINITY, f64::min);
        if min_time.is_finite() {
            self.cur_vb = self.vb_of(min_time);
        }
        for e in entries {
            let b = self.bucket_at(self.vb_of(e.time));
            self.buckets[b].push(e);
        }
    }
}

/// Estimates a bucket width from a deterministic sample of entry times:
/// a trimmed span (10th–90th percentile of up to 64 strided samples)
/// scaled to the full population, targeting a few entries per bucket.
/// `None` when the sample carries no spread (keep the previous width).
fn estimate_width(entries: &[Entry]) -> Option<f64> {
    if entries.len() < 2 {
        return None;
    }
    let stride = (entries.len() / 64).max(1);
    let mut sample: Vec<f64> = entries.iter().step_by(stride).map(|e| e.time).collect();
    sample.sort_by(f64::total_cmp);
    let k = sample.len();
    let (lo, hi) = (k / 10, k - 1 - k / 10);
    let span = if hi > lo {
        (sample[hi] - sample[lo]) * (k as f64) / ((hi - lo) as f64)
    } else {
        sample[k - 1] - sample[0]
    };
    if !(span.is_finite() && span > 0.0) {
        return None;
    }
    // ~3 entries per bucket-day keeps the per-pop scan short while
    // tolerating clustering.
    let width = 3.0 * span / entries.len() as f64;
    (width.is_finite() && width > 0.0).then_some(width)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn both() -> [EventQueue; 2] {
        [
            EventQueue::with_backend(QueueBackend::Calendar),
            EventQueue::with_backend(QueueBackend::BinaryHeap),
        ]
    }

    #[test]
    fn pops_in_time_order() {
        for mut q in both() {
            q.push(5.0, Event::SchedulerTick);
            q.push(1.0, Event::Arrival(0));
            q.push(3.0, Event::Arrival(1));
            assert_eq!(q.len(), 3);
            assert_eq!(q.peek_time(), Some(1.0));
            assert_eq!(q.pop(), Some((1.0, Event::Arrival(0))));
            assert_eq!(q.pop(), Some((3.0, Event::Arrival(1))));
            assert_eq!(q.pop(), Some((5.0, Event::SchedulerTick)));
            assert_eq!(q.pop(), None);
            assert!(q.is_empty());
        }
    }

    #[test]
    fn simultaneous_events_fire_in_insertion_order() {
        for mut q in both() {
            for i in 0..10 {
                q.push(2.0, Event::Arrival(i));
            }
            for i in 0..10 {
                assert_eq!(q.pop(), Some((2.0, Event::Arrival(i))));
            }
        }
    }

    #[test]
    fn interleaved_pushes_stay_deterministic() {
        for mut q in both() {
            q.push(1.0, Event::Arrival(0));
            q.pop();
            q.push(4.0, Event::Arrival(1));
            q.push(4.0, Event::Arrival(2));
            q.push(2.0, Event::Arrival(3));
            assert_eq!(q.pop(), Some((2.0, Event::Arrival(3))));
            assert_eq!(q.pop(), Some((4.0, Event::Arrival(1))));
            assert_eq!(q.pop(), Some((4.0, Event::Arrival(2))));
        }
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn rejects_nan_times() {
        EventQueue::new().push(f64::NAN, Event::SchedulerTick);
    }

    #[test]
    fn arrivals_precede_other_events_at_equal_times() {
        // The band ordering: an arrival pushed *after* a completion, at
        // the same instant, still fires first — the property that makes
        // streamed arrival injection equivalent to materialized pushes.
        for mut q in both() {
            q.push(7.0, Event::SchedulerTick);
            q.push(
                7.0,
                Event::Completion {
                    job: JobId(1),
                    generation: 3,
                },
            );
            q.push(7.0, Event::Arrival(5));
            assert_eq!(q.pop(), Some((7.0, Event::Arrival(5))));
            assert_eq!(q.pop(), Some((7.0, Event::SchedulerTick)));
            assert_eq!(
                q.pop(),
                Some((
                    7.0,
                    Event::Completion {
                        job: JobId(1),
                        generation: 3
                    }
                ))
            );
        }
    }

    #[test]
    fn calendar_matches_heap_on_mixed_workload() {
        // Deterministic pseudo-random interleaving with duplicate times,
        // crossing several resize thresholds in both directions.
        let mut cal = EventQueue::with_backend(QueueBackend::Calendar);
        let mut heap = EventQueue::with_backend(QueueBackend::BinaryHeap);
        let mut state = 0x243f_6a88_85a3_08d3u64;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut arrival = 0usize;
        let mut floor = 0.0f64;
        for round in 0..2_000 {
            let pushes = (rnd() % 5) as usize + 1;
            for _ in 0..pushes {
                let t = floor + (rnd() % 1000) as f64 / 10.0;
                let ev = match rnd() % 4 {
                    0 => {
                        arrival += 1;
                        Event::Arrival(arrival)
                    }
                    1 => Event::Completion {
                        job: JobId(rnd() % 50),
                        generation: rnd() % 10,
                    },
                    2 => Event::WalltimeKill {
                        job: JobId(rnd() % 50),
                        arm: rnd() % 3,
                    },
                    _ => Event::SchedulerTick,
                };
                cal.push(t, ev.clone());
                heap.push(t, ev);
            }
            let pops = (rnd() % 4) as usize + usize::from(round > 1_500) * 3;
            for _ in 0..pops {
                let a = cal.pop();
                let b = heap.pop();
                assert_eq!(a, b, "round {round}");
                if let Some((t, _)) = a {
                    floor = floor.max(t);
                }
            }
            assert_eq!(cal.len(), heap.len());
            assert_eq!(cal.peek_time(), heap.peek_time());
        }
        while let Some(b) = heap.pop() {
            assert_eq!(cal.pop(), Some(b));
        }
        assert!(cal.is_empty());
    }

    #[test]
    fn calendar_survives_extreme_time_skew() {
        // One event a simulated year out, the rest clustered — exercises
        // the dry-cycle direct-search fallback.
        let mut q = EventQueue::new();
        q.push(31_536_000.0, Event::SchedulerTick);
        for i in 0..100 {
            q.push(i as f64 * 1e-6, Event::Arrival(i));
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((i as f64 * 1e-6, Event::Arrival(i))));
        }
        assert_eq!(q.pop(), Some((31_536_000.0, Event::SchedulerTick)));
        assert!(q.pop().is_none());
    }

    #[test]
    fn backend_is_reported() {
        assert_eq!(EventQueue::new().backend(), QueueBackend::Calendar);
        assert_eq!(
            EventQueue::with_backend(QueueBackend::BinaryHeap).backend(),
            QueueBackend::BinaryHeap
        );
        assert_eq!(QueueBackend::default(), QueueBackend::Calendar);
    }
}
