//! Structured decision traces.
//!
//! When tracing is on ([`crate::SimConfig::audit`] or
//! [`crate::sim::run_traced`]), the engine records every scheduler-visible
//! state change — submissions, start decisions with their justification,
//! completions, kills, requeues, node state changes, and occupancy deltas
//! — as a flat, time-ordered event list. The trace is the input to the
//! replay auditor ([`crate::audit::Auditor`]) and can be exported as JSON
//! (`nodeshare audit --trace`).

use nodeshare_cluster::{JobId, NodeId, ShareMode};
use nodeshare_perf::AppId;
use nodeshare_workload::{Malleability, Seconds};

/// Why a policy started a job now. Recorded per start decision; policies
/// report it through [`crate::Scheduler::explain`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StartReason {
    /// The oldest waiting job started — plain FCFS progress.
    HeadOfQueue,
    /// A younger job jumped `ahead` older waiting jobs into a hole the
    /// scheduler judged harmless (backfill).
    Backfilled {
        /// Number of older jobs still waiting when this one started.
        ahead: usize,
    },
    /// The job was co-scheduled in shared mode; `occupied` of its target
    /// nodes already hosted a partner.
    CoScheduled {
        /// Target nodes that already had a resident job.
        occupied: usize,
    },
    /// The policy gave no specific justification.
    Unspecified,
}

impl StartReason {
    /// Derives a reason from the scheduling context — the default
    /// implementation of [`crate::Scheduler::explain`]. Policies with
    /// first-hand knowledge (e.g. an FCFS policy that only ever starts
    /// the head) override `explain` instead.
    pub fn classify(ctx: &crate::view::SchedContext<'_>, decision: &crate::view::Decision) -> Self {
        if decision.is_reshape() {
            // Reshapes are recorded as TraceEvent::Reshape, never as
            // starts; no start justification applies.
            return StartReason::Unspecified;
        }
        let ahead = ctx
            .queue
            .iter()
            .take_while(|j| j.id != decision.job())
            .count();
        if decision.mode() == ShareMode::Shared {
            let occupied = decision
                .nodes()
                .iter()
                .filter(|&&n| ctx.cluster.node(n).is_some_and(|node| !node.is_idle()))
                .count();
            if occupied > 0 {
                return StartReason::CoScheduled { occupied };
            }
        }
        if ahead == 0 {
            StartReason::HeadOfQueue
        } else {
            StartReason::Backfilled { ahead }
        }
    }

    /// Classifies a whole invocation's decisions in one queue scan.
    ///
    /// Semantically identical to calling [`StartReason::classify`] per
    /// decision — the queue-position lookup is shared across decisions
    /// instead of re-scanned each time, which is what audited
    /// trace-heavy campaigns pay for. All reasons are justified against
    /// the same pre-apply context, exactly like the per-decision path.
    pub fn classify_all(
        ctx: &crate::view::SchedContext<'_>,
        decisions: &[crate::view::Decision],
    ) -> Vec<Self> {
        // detlint: allow(D1, first-occurrence position index; per-id lookups only, never iterated)
        let mut position = std::collections::HashMap::new();
        for (i, j) in ctx.queue.iter().enumerate() {
            // First occurrence wins, matching the `take_while` scan.
            position.entry(j.id).or_insert(i);
        }
        decisions
            .iter()
            .map(|decision| {
                if decision.is_reshape() {
                    return StartReason::Unspecified;
                }
                // A job absent from the queue scans past every entry,
                // matching `take_while` in the per-decision classifier.
                let ahead = position
                    .get(&decision.job())
                    .copied()
                    .unwrap_or(ctx.queue.len());
                if decision.mode() == ShareMode::Shared {
                    let occupied = decision
                        .nodes()
                        .iter()
                        .filter(|&&n| ctx.cluster.node(n).is_some_and(|node| !node.is_idle()))
                        .count();
                    if occupied > 0 {
                        return StartReason::CoScheduled { occupied };
                    }
                }
                if ahead == 0 {
                    StartReason::HeadOfQueue
                } else {
                    StartReason::Backfilled { ahead }
                }
            })
            .collect()
    }

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            StartReason::HeadOfQueue => "head-of-queue",
            StartReason::Backfilled { .. } => "backfilled",
            StartReason::CoScheduled { .. } => "co-scheduled",
            StartReason::Unspecified => "unspecified",
        }
    }
}

/// Why a node left service.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DownCause {
    /// Random failure (resident jobs were requeued).
    Failed,
    /// Planned maintenance drain (resident jobs finish normally).
    Drained,
}

/// One recorded engine event.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// A job entered the queue.
    Submitted {
        /// Event time.
        time: Seconds,
        /// The job.
        job: JobId,
        /// Application it runs.
        app: AppId,
        /// Requested node count.
        nodes: u32,
        /// User walltime estimate.
        walltime_estimate: Seconds,
        /// Whether the job opted into sharing.
        share_eligible: bool,
        /// The job's width-malleability contract
        /// ([`Malleability::RIGID`] for ordinary jobs) — the auditor
        /// validates every later reshape against it.
        malleable: Malleability,
    },
    /// A job was rejected at submission as unsatisfiable on this machine.
    Rejected {
        /// Event time.
        time: Seconds,
        /// The job.
        job: JobId,
    },
    /// A queued job started on a set of nodes.
    Started {
        /// Event time.
        time: Seconds,
        /// The job.
        job: JobId,
        /// Allocation mode.
        mode: ShareMode,
        /// Granted nodes, in grant order.
        nodes: Vec<NodeId>,
        /// The policy's justification.
        reason: StartReason,
        /// Up-and-idle node count immediately before the grant.
        idle_before: usize,
        /// Oldest job still waiting when this start was applied (id and
        /// its node request), when the started job was not the head —
        /// the input to the queue-jump justification check.
        head_waiting: Option<(JobId, u32)>,
        /// Co-residents after the grant, as `(node, partner)` pairs.
        partners: Vec<(NodeId, JobId)>,
    },
    /// A running exclusive malleable job changed width in place.
    Reshape {
        /// Event time.
        time: Seconds,
        /// The reshaped job.
        job: JobId,
        /// The complete node set held immediately before the reshape.
        from: Vec<NodeId>,
        /// The complete node set held immediately after the reshape.
        to: Vec<NodeId>,
        /// Reshape cost charged against the job's remaining work, in
        /// exclusive node-seconds (the contract's `reshape_cost`).
        cost: f64,
    },
    /// A running job terminated.
    Finished {
        /// Event time.
        time: Seconds,
        /// The job.
        job: JobId,
        /// True when the engine killed it at its walltime bound.
        killed: bool,
    },
    /// A running job was evicted by a node failure and requeued.
    Requeued {
        /// Event time.
        time: Seconds,
        /// The evicted job.
        job: JobId,
        /// The failed node that triggered the eviction.
        node: NodeId,
    },
    /// A node left service.
    NodeDown {
        /// Event time.
        time: Seconds,
        /// The node.
        node: NodeId,
        /// Why it went down.
        cause: DownCause,
    },
    /// A node returned to service.
    NodeUp {
        /// Event time.
        time: Seconds,
        /// The node.
        node: NodeId,
    },
    /// Cluster occupancy after an allocation change — the engine's own
    /// view, cross-checked against the auditor's replay.
    Occupancy {
        /// Event time.
        time: Seconds,
        /// Physical cores busy (cluster-wide).
        busy_cores: u64,
        /// Nodes hosting two or more jobs.
        shared_nodes: usize,
    },
}

impl TraceEvent {
    /// The event's timestamp.
    pub fn time(&self) -> Seconds {
        match self {
            TraceEvent::Submitted { time, .. }
            | TraceEvent::Rejected { time, .. }
            | TraceEvent::Started { time, .. }
            | TraceEvent::Reshape { time, .. }
            | TraceEvent::Finished { time, .. }
            | TraceEvent::Requeued { time, .. }
            | TraceEvent::NodeDown { time, .. }
            | TraceEvent::NodeUp { time, .. }
            | TraceEvent::Occupancy { time, .. } => *time,
        }
    }
}

/// An append-only, time-ordered record of one simulation run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DecisionTrace {
    events: Vec<TraceEvent>,
}

impl DecisionTrace {
    /// An empty trace.
    pub fn new() -> Self {
        DecisionTrace::default()
    }

    /// Appends an event.
    ///
    /// # Panics
    /// Panics if the event's time precedes the previous event's — the
    /// engine emits events in simulation order.
    pub fn push(&mut self, event: TraceEvent) {
        if let Some(last) = self.events.last() {
            assert!(
                event.time() + 1e-9 >= last.time(),
                "trace event out of order"
            );
        }
        self.events.push(event);
    }

    /// All events, in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Start events only, in order.
    pub fn starts(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Started { .. }))
    }

    /// Number of shared-mode starts.
    pub fn shared_start_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    TraceEvent::Started {
                        mode: ShareMode::Shared,
                        ..
                    }
                )
            })
            .count()
    }

    /// Serializes the trace as JSON (hand-written: the vendored `serde`
    /// stand-in provides derives as markers only, so structured output in
    /// this workspace is emitted directly).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 * self.events.len() + 32);
        out.push_str("{\"events\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json_event(&mut out, e);
        }
        out.push_str("]}");
        out
    }
}

fn json_event(out: &mut String, e: &TraceEvent) {
    use std::fmt::Write;
    match e {
        TraceEvent::Submitted {
            time,
            job,
            app,
            nodes,
            walltime_estimate,
            share_eligible,
            malleable,
        } => {
            let _ = write!(
                out,
                "{{\"type\":\"submitted\",\"t\":{time},\"job\":{},\"app\":{},\
                 \"nodes\":{nodes},\"walltime\":{walltime_estimate},\"share\":{share_eligible}",
                job.0, app.0
            );
            // Rigid jobs — every job before malleability existed — keep
            // their historical JSON byte-identical.
            if !malleable.is_rigid() {
                let _ = write!(
                    out,
                    ",\"malleable\":{{\"min\":{},\"max\":{},\"cost\":{}}}",
                    malleable.min_nodes, malleable.max_nodes, malleable.reshape_cost
                );
            }
            out.push('}');
        }
        TraceEvent::Rejected { time, job } => {
            let _ = write!(
                out,
                "{{\"type\":\"rejected\",\"t\":{time},\"job\":{}}}",
                job.0
            );
        }
        TraceEvent::Started {
            time,
            job,
            mode,
            nodes,
            reason,
            idle_before,
            head_waiting,
            partners,
        } => {
            let _ = write!(
                out,
                "{{\"type\":\"started\",\"t\":{time},\"job\":{},\"mode\":\"{}\",\"nodes\":[",
                job.0,
                match mode {
                    ShareMode::Exclusive => "exclusive",
                    ShareMode::Shared => "shared",
                }
            );
            for (i, n) in nodes.iter().enumerate() {
                let _ = write!(out, "{}{}", if i > 0 { "," } else { "" }, n.0);
            }
            let _ = write!(
                out,
                "],\"reason\":\"{}\",\"idle_before\":{idle_before}",
                reason.label()
            );
            if let Some((head, head_nodes)) = head_waiting {
                let _ = write!(
                    out,
                    ",\"head_waiting\":{{\"job\":{},\"nodes\":{head_nodes}}}",
                    head.0
                );
            }
            out.push_str(",\"partners\":[");
            for (i, (n, j)) in partners.iter().enumerate() {
                let _ = write!(
                    out,
                    "{}{{\"node\":{},\"job\":{}}}",
                    if i > 0 { "," } else { "" },
                    n.0,
                    j.0
                );
            }
            out.push_str("]}");
        }
        TraceEvent::Reshape {
            time,
            job,
            from,
            to,
            cost,
        } => {
            let _ = write!(
                out,
                "{{\"type\":\"reshape\",\"t\":{time},\"job\":{},\"from\":[",
                job.0
            );
            for (i, n) in from.iter().enumerate() {
                let _ = write!(out, "{}{}", if i > 0 { "," } else { "" }, n.0);
            }
            out.push_str("],\"to\":[");
            for (i, n) in to.iter().enumerate() {
                let _ = write!(out, "{}{}", if i > 0 { "," } else { "" }, n.0);
            }
            let _ = write!(out, "],\"cost\":{cost}}}");
        }
        TraceEvent::Finished { time, job, killed } => {
            let _ = write!(
                out,
                "{{\"type\":\"finished\",\"t\":{time},\"job\":{},\"killed\":{killed}}}",
                job.0
            );
        }
        TraceEvent::Requeued { time, job, node } => {
            let _ = write!(
                out,
                "{{\"type\":\"requeued\",\"t\":{time},\"job\":{},\"node\":{}}}",
                job.0, node.0
            );
        }
        TraceEvent::NodeDown { time, node, cause } => {
            let _ = write!(
                out,
                "{{\"type\":\"node_down\",\"t\":{time},\"node\":{},\"cause\":\"{}\"}}",
                node.0,
                match cause {
                    DownCause::Failed => "failed",
                    DownCause::Drained => "drained",
                }
            );
        }
        TraceEvent::NodeUp { time, node } => {
            let _ = write!(
                out,
                "{{\"type\":\"node_up\",\"t\":{time},\"node\":{}}}",
                node.0
            );
        }
        TraceEvent::Occupancy {
            time,
            busy_cores,
            shared_nodes,
        } => {
            let _ = write!(
                out,
                "{{\"type\":\"occupancy\",\"t\":{time},\"busy_cores\":{busy_cores},\
                 \"shared_nodes\":{shared_nodes}}}",
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_orders_and_serializes() {
        let mut t = DecisionTrace::new();
        t.push(TraceEvent::Submitted {
            time: 0.0,
            job: JobId(1),
            app: AppId(2),
            nodes: 3,
            walltime_estimate: 600.0,
            share_eligible: true,
            malleable: Malleability::RIGID,
        });
        t.push(TraceEvent::Started {
            time: 0.0,
            job: JobId(1),
            mode: ShareMode::Shared,
            nodes: vec![NodeId(0), NodeId(1), NodeId(2)],
            reason: StartReason::HeadOfQueue,
            idle_before: 4,
            head_waiting: None,
            partners: vec![(NodeId(0), JobId(9))],
        });
        t.push(TraceEvent::Finished {
            time: 500.0,
            job: JobId(1),
            killed: false,
        });
        assert_eq!(t.len(), 3);
        assert_eq!(t.shared_start_count(), 1);
        let json = t.to_json();
        assert!(json.starts_with("{\"events\":["));
        assert!(json.contains("\"type\":\"submitted\""));
        assert!(json.contains("\"mode\":\"shared\""));
        assert!(json.contains("\"reason\":\"head-of-queue\""));
        assert!(json.contains("\"partners\":[{\"node\":0,\"job\":9}]"));
        // Rigid submissions keep their historical JSON shape.
        assert!(!json.contains("malleable"));
        assert!(json.ends_with("]}"));
    }

    #[test]
    fn reshape_events_serialize_and_order() {
        let mut t = DecisionTrace::new();
        t.push(TraceEvent::Submitted {
            time: 0.0,
            job: JobId(1),
            app: AppId(0),
            nodes: 2,
            walltime_estimate: 600.0,
            share_eligible: false,
            malleable: Malleability::range(1, 4, 30.0),
        });
        t.push(TraceEvent::Reshape {
            time: 50.0,
            job: JobId(1),
            from: vec![NodeId(0), NodeId(1)],
            to: vec![NodeId(0)],
            cost: 30.0,
        });
        assert_eq!(t.events()[1].time(), 50.0);
        let json = t.to_json();
        assert!(json.contains("\"malleable\":{\"min\":1,\"max\":4,\"cost\":30}"));
        assert!(json.contains("\"type\":\"reshape\""));
        assert!(json.contains("\"from\":[0,1],\"to\":[0],\"cost\":30"));
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn trace_rejects_time_travel() {
        let mut t = DecisionTrace::new();
        t.push(TraceEvent::Rejected {
            time: 10.0,
            job: JobId(1),
        });
        t.push(TraceEvent::Rejected {
            time: 5.0,
            job: JobId(2),
        });
    }

    #[test]
    fn reason_labels() {
        assert_eq!(StartReason::HeadOfQueue.label(), "head-of-queue");
        assert_eq!(StartReason::Backfilled { ahead: 2 }.label(), "backfilled");
        assert_eq!(
            StartReason::CoScheduled { occupied: 1 }.label(),
            "co-scheduled"
        );
        assert_eq!(StartReason::Unspecified.label(), "unspecified");
    }

    #[test]
    fn classify_all_matches_per_decision_classify() {
        use crate::view::{Decision, SchedContext};
        use nodeshare_cluster::{Cluster, ClusterSpec, NodeSpec};
        use nodeshare_workload::JobSpec;

        let spec = |id: u64, nodes: u32| JobSpec {
            malleable: Default::default(),
            id: JobId(id),
            app: AppId(0),
            nodes,
            submit: 0.0,
            runtime_exclusive: 100.0,
            walltime_estimate: 200.0,
            mem_per_node_mib: 0,
            share_eligible: true,
            user: 0,
        };
        let mut cluster = Cluster::new(ClusterSpec::new(4, NodeSpec::tiny()));
        // Occupy node 0 shared, so a shared decision targeting it is
        // classified co-scheduled.
        cluster
            .allocate_shared(JobId(90), &[NodeId(0)], 0)
            .expect("seed occupant");
        let queue = vec![spec(1, 1), spec(2, 1), spec(3, 2)];
        let ctx = SchedContext {
            now: 0.0,
            queue: &queue,
            cluster: &cluster,
            running: &std::collections::BTreeMap::new(),
            shared_grace: 1.0,
            completed: &[],
            telemetry: None,
        };
        let decisions = vec![
            // Head of queue.
            Decision::StartExclusive {
                job: JobId(1),
                nodes: vec![NodeId(1)],
            },
            // Backfilled past one waiting job.
            Decision::StartExclusive {
                job: JobId(2),
                nodes: vec![NodeId(2)],
            },
            // Shared onto an occupied node: co-scheduled.
            Decision::StartShared {
                job: JobId(3),
                nodes: vec![NodeId(0), NodeId(3)],
            },
            // Not in the queue at all (requeue-style edge case).
            Decision::StartExclusive {
                job: JobId(99),
                nodes: vec![NodeId(3)],
            },
        ];
        let batched = StartReason::classify_all(&ctx, &decisions);
        let single: Vec<StartReason> = decisions
            .iter()
            .map(|d| StartReason::classify(&ctx, d))
            .collect();
        assert_eq!(batched, single);
        assert_eq!(batched[0], StartReason::HeadOfQueue);
        assert_eq!(batched[1], StartReason::Backfilled { ahead: 1 });
        assert_eq!(batched[2], StartReason::CoScheduled { occupied: 1 });
        assert_eq!(batched[3], StartReason::Backfilled { ahead: 3 });
    }
}
