//! Work-based job progress with co-runner-dependent rates.
//!
//! A running job carries `work_done` in *exclusive-rate seconds*; it
//! completes when `work_done` reaches its exclusive runtime. Its progress
//! rate is the minimum over its nodes of the per-node rate — bulk-
//! synchronous applications advance at the pace of their slowest rank —
//! where a node's rate is 1.0 when the job runs alone there and the pair
//! matrix rate when a co-runner is resident.
//!
//! Rates are piecewise constant between allocation changes, so progress
//! integration is exact. Every re-rate bumps the job's generation,
//! invalidating completion events scheduled under the old rate.

use nodeshare_cluster::{Cluster, JobId, NodeId, ShareMode};
use nodeshare_perf::CoRunTruth;
use nodeshare_workload::{JobSpec, Seconds};

/// Mutable state of one running job.
#[derive(Clone, Debug)]
pub struct RunningJob {
    /// The submitted spec.
    pub spec: JobSpec,
    /// Start time.
    pub start: Seconds,
    /// Nodes held (grant order).
    pub nodes: Vec<NodeId>,
    /// Allocation mode.
    pub mode: ShareMode,
    /// Exclusive-rate seconds of work completed so far.
    pub work_done: f64,
    /// Current progress rate (exclusive-rate seconds per wall second).
    pub rate: f64,
    /// Wall time of the last progress integration.
    pub last_update: Seconds,
    /// Re-rate generation; completion events carry the generation they
    /// were scheduled under.
    pub generation: u64,
    /// Accumulated node-seconds spent co-resident with another job.
    pub shared_node_seconds: f64,
    /// Number of this job's nodes currently hosting a co-runner
    /// (piecewise constant between events).
    pub shared_nodes_now: u32,
    /// Normalized walltime consumed, in *requested-width seconds*: the
    /// integral of `current_width / requested_width` over wall time.
    /// For rigid jobs this is exactly the elapsed wall time; reshapes
    /// make the walltime budget width-proportional (a job shrunk to
    /// half width burns its allowance at half speed). The engine kills
    /// the job when this reaches `walltime_estimate × grace` plus
    /// [`walltime_credit`](Self::walltime_credit).
    pub walltime_consumed: f64,
    /// Normalized walltime credit granted for system-initiated
    /// reshapes: each reshape charges `cost / requested_width` of extra
    /// work *and* extends the kill bound by the same amount, so a job
    /// is never pushed over its walltime by a reshape the scheduler —
    /// not the user — decided on.
    pub walltime_credit: f64,
    /// Stamp of the currently armed walltime-kill event; a popped kill
    /// whose stamp differs is stale (the job reshaped or restarted since
    /// it was armed).
    pub kill_arm: u64,
}

impl RunningJob {
    /// Remaining work in exclusive-rate seconds.
    #[inline]
    pub fn work_remaining(&self) -> f64 {
        (self.spec.runtime_exclusive - self.work_done).max(0.0)
    }

    /// True when the job's work is (numerically) done.
    #[inline]
    pub fn is_complete(&self) -> bool {
        self.work_remaining() <= 1e-9 * self.spec.runtime_exclusive.max(1.0)
    }

    /// Predicted completion time under the current rate.
    #[inline]
    pub fn eta(&self, now: Seconds) -> Seconds {
        now + self.work_remaining() / self.rate
    }

    /// Current width over requested width — 1.0 unless a reshape
    /// changed the allocation.
    #[inline]
    pub fn width_factor(&self) -> f64 {
        if self.nodes.len() as u32 == self.spec.nodes {
            1.0
        } else {
            self.nodes.len() as f64 / self.spec.nodes as f64
        }
    }

    /// Integrates progress from `last_update` to `now`.
    pub fn advance_to(&mut self, now: Seconds) {
        debug_assert!(now + 1e-9 >= self.last_update, "time went backwards");
        let dt = (now - self.last_update).max(0.0);
        self.work_done += self.rate * dt;
        self.shared_node_seconds += self.shared_nodes_now as f64 * dt;
        self.walltime_consumed += self.width_factor() * dt;
        self.last_update = now;
    }

    /// Recomputes `rate`/`shared_nodes_now` from current cluster
    /// occupancy, resolving each co-runner's application through `app_of`,
    /// and bumps the generation.
    ///
    /// Handles any SMT width: a node's rate comes from the n-way truth
    /// over *all* co-residents of that node.
    ///
    /// Call only after [`RunningJob::advance_to`] — the rate change must
    /// not be applied retroactively.
    pub fn rerate_with(
        &mut self,
        cluster: &Cluster,
        truth: &CoRunTruth,
        mut app_of: impl FnMut(JobId) -> nodeshare_perf::AppId,
    ) -> u64 {
        let mut rate = f64::INFINITY;
        let mut shared_nodes = 0u32;
        let mut co_apps: Vec<nodeshare_perf::AppId> = Vec::new();
        for &node_id in &self.nodes {
            // detlint: allow(D5, invariant stated in the expect message; violating it is a bug, not a recoverable state)
            let node = cluster.node(node_id).expect("running job's node exists");
            co_apps.clear();
            for occupant in node.occupants() {
                if occupant != self.spec.id {
                    co_apps.push(app_of(occupant));
                }
            }
            if !co_apps.is_empty() {
                shared_nodes += 1;
            }
            rate = rate.min(truth.rate_with(self.spec.app, &co_apps));
        }
        // Width-malleable jobs progress in proportion to their current
        // width: the work model is perfect speedup inside the contract's
        // [min, max] range, so a job shrunk to half its requested width
        // advances at half the pace its slowest node allows. Rigid jobs
        // (width == requested) take the historical path untouched.
        let width = self.width_factor();
        if width != 1.0 {
            rate *= width;
        }
        debug_assert!(rate.is_finite() && rate > 0.0, "invalid rate {rate}");
        self.rate = rate;
        self.shared_nodes_now = shared_nodes;
        self.generation += 1;
        self.generation
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodeshare_cluster::{ClusterSpec, NodeSpec};
    use nodeshare_perf::{AppCatalog, AppId, ContentionModel};

    fn spec(id: u64, app: u8) -> JobSpec {
        JobSpec {
            malleable: Default::default(),
            id: JobId(id),
            app: AppId(app),
            nodes: 1,
            submit: 0.0,
            runtime_exclusive: 100.0,
            walltime_estimate: 200.0,
            mem_per_node_mib: 0,
            share_eligible: true,
            user: 0,
        }
    }

    fn running(id: u64, app: u8, nodes: Vec<NodeId>) -> RunningJob {
        RunningJob {
            spec: spec(id, app),
            start: 0.0,
            nodes,
            mode: ShareMode::Shared,
            work_done: 0.0,
            rate: 1.0,
            last_update: 0.0,
            generation: 0,
            shared_node_seconds: 0.0,
            shared_nodes_now: 0,
            walltime_consumed: 0.0,
            walltime_credit: 0.0,
            kill_arm: 0,
        }
    }

    #[test]
    fn advance_integrates_work_and_sharing() {
        let mut j = running(1, 0, vec![NodeId(0)]);
        j.rate = 0.5;
        j.shared_nodes_now = 1;
        j.advance_to(40.0);
        assert_eq!(j.work_done, 20.0);
        assert_eq!(j.shared_node_seconds, 40.0);
        assert_eq!(j.work_remaining(), 80.0);
        assert!(!j.is_complete());
        assert_eq!(j.eta(40.0), 40.0 + 160.0);
    }

    #[test]
    fn advance_integrates_normalized_walltime() {
        // Rigid path: walltime_consumed tracks wall time exactly.
        let mut j = running(1, 0, vec![NodeId(0)]);
        j.spec.nodes = 1;
        j.advance_to(30.0);
        assert_eq!(j.walltime_consumed, 30.0);
        // Shrunk to half width: the budget burns at half speed.
        let mut half = running(2, 0, vec![NodeId(0)]);
        half.spec.nodes = 2;
        half.advance_to(30.0);
        assert_eq!(half.walltime_consumed, 15.0);
    }

    #[test]
    fn rerate_scales_with_width_for_reshaped_jobs() {
        let truth = CoRunTruth::build(&AppCatalog::trinity(), &ContentionModel::calibrated());
        let mut cluster = Cluster::new(ClusterSpec::new(4, NodeSpec::tiny()));
        cluster
            .allocate_exclusive(JobId(1), &[NodeId(0), NodeId(1)], 0)
            .unwrap();
        // Requested 4 nodes, currently holding 2: half rate.
        let mut j = running(1, 0, vec![NodeId(0), NodeId(1)]);
        j.spec.nodes = 4;
        j.mode = ShareMode::Exclusive;
        j.rerate_with(&cluster, &truth, |_| unreachable!("exclusive"));
        assert!((j.rate - 0.5).abs() < 1e-12);
        assert_eq!(j.shared_nodes_now, 0);
    }

    #[test]
    fn completion_is_numerically_tolerant() {
        let mut j = running(1, 0, vec![NodeId(0)]);
        j.work_done = 100.0 - 1e-12;
        assert!(j.is_complete());
    }

    #[test]
    fn rerate_alone_gives_unit_rate() {
        let truth = CoRunTruth::build(&AppCatalog::trinity(), &ContentionModel::calibrated());
        let mut cluster = Cluster::new(ClusterSpec::new(2, NodeSpec::tiny()));
        cluster
            .allocate_shared(JobId(1), &[NodeId(0), NodeId(1)], 0)
            .unwrap();
        let mut j = running(1, 0, vec![NodeId(0), NodeId(1)]);
        j.spec.nodes = 2;
        let g = j.rerate_with(&cluster, &truth, |_| unreachable!("no co-runners"));
        assert_eq!(j.rate, 1.0);
        assert_eq!(j.shared_nodes_now, 0);
        assert_eq!(g, 1);
    }

    #[test]
    fn rerate_with_uses_slowest_node() {
        let catalog = AppCatalog::trinity();
        let truth = CoRunTruth::build(&catalog, &ContentionModel::calibrated());
        let mut cluster = Cluster::new(ClusterSpec::new(2, NodeSpec::tiny()));
        // Job 1 spans both nodes; job 2 shares only node 1.
        cluster
            .allocate_shared(JobId(1), &[NodeId(0), NodeId(1)], 0)
            .unwrap();
        cluster.allocate_shared(JobId(2), &[NodeId(1)], 0).unwrap();
        let fe = catalog.by_name("miniFE").unwrap().id;
        let amg = catalog.by_name("AMG").unwrap().id;
        let mut j = running(1, fe.0, vec![NodeId(0), NodeId(1)]);
        j.spec.nodes = 2;
        j.spec.app = fe;
        j.rerate_with(&cluster, &truth, |_| amg);
        // Node 0 is alone (rate 1.0); node 1 shares with AMG.
        let expected = truth.pair_matrix().rate(fe, amg);
        assert!((j.rate - expected).abs() < 1e-12);
        assert_eq!(j.shared_nodes_now, 1);
        assert_eq!(j.generation, 1);
    }

    #[test]
    fn symmetric_corun_rates_match_matrix() {
        let catalog = AppCatalog::trinity();
        let truth = CoRunTruth::build(&catalog, &ContentionModel::calibrated());
        let mut cluster = Cluster::new(ClusterSpec::new(1, NodeSpec::tiny()));
        cluster.allocate_shared(JobId(1), &[NodeId(0)], 0).unwrap();
        cluster.allocate_shared(JobId(2), &[NodeId(0)], 0).unwrap();
        let fe = catalog.by_name("miniFE").unwrap().id;
        let mut j = running(1, fe.0, vec![NodeId(0)]);
        j.spec.app = fe;
        j.rerate_with(&cluster, &truth, |_| fe);
        assert!((j.rate - truth.pair_matrix().rate(fe, fe)).abs() < 1e-12);
        assert_eq!(j.shared_nodes_now, 1);
    }
}
