//! Replay auditor: re-derives cluster state from a [`DecisionTrace`] and
//! checks the run's conservation laws against the [`SimOutcome`].
//!
//! The auditor is an *independent* accountant: it never looks at the
//! engine's internal state, only at the recorded events and the final
//! outcome. Any disagreement — node-seconds that do not add up, a job
//! co-resident with an incompatible partner, a start before submission —
//! is reported as a [`Violation`] naming the job, node, and invariant
//! involved.

use crate::outcome::SimOutcome;
use crate::sim::SimConfig;
use crate::trace::{DecisionTrace, DownCause, TraceEvent};
use nodeshare_cluster::{JobId, NodeId, ShareMode};
use nodeshare_perf::{AppId, CoRunTruth};
use nodeshare_workload::{Malleability, Seconds};
use std::collections::BTreeMap;

/// One broken invariant, with enough context to act on.
#[derive(Clone, Debug, PartialEq)]
pub struct Violation {
    /// Name of the violated invariant (stable, grep-able).
    pub invariant: &'static str,
    /// The job involved, when one is.
    pub job: Option<JobId>,
    /// The node involved, when one is.
    pub node: Option<NodeId>,
    /// Simulation time of the offending event (end time for whole-run
    /// accounting checks).
    pub time: Seconds,
    /// Human-readable specifics.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] t={:.3}", self.invariant, self.time)?;
        if let Some(j) = self.job {
            write!(f, " {j}")?;
        }
        if let Some(n) = self.node {
            write!(f, " {n}")?;
        }
        write!(f, ": {}", self.detail)
    }
}

/// Aggregate numbers from a clean audit.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AuditSummary {
    /// Events replayed.
    pub events: usize,
    /// Start decisions checked.
    pub starts: usize,
    /// Shared-mode starts among them.
    pub shared_starts: usize,
    /// Job terminations.
    pub finished: usize,
    /// Walltime kills among them.
    pub killed: usize,
    /// Failure-driven requeues.
    pub requeues: usize,
    /// Reshape events checked.
    pub reshapes: usize,
    /// Busy core-seconds re-derived by replay.
    pub busy_core_seconds: f64,
    /// Shared (doubly-occupied-node) core-seconds re-derived by replay.
    pub shared_core_seconds: f64,
}

/// Relative-plus-absolute tolerance for accumulated time integrals.
fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-6 + 1e-9 * a.abs().max(b.abs())
}

#[derive(Clone, Debug)]
struct JobInfo {
    submit: Seconds,
    app: AppId,
    nodes: u32,
    walltime_estimate: Seconds,
    share_eligible: bool,
    malleable: Malleability,
    rejected: bool,
}

#[derive(Clone, Debug)]
struct RunState {
    mode: ShareMode,
    nodes: Vec<NodeId>,
    /// Width the job requested (reshapes move `nodes` away from it).
    requested: u32,
    /// Time of the last width change (start, or latest reshape).
    last_change: Seconds,
    /// Normalized walltime consumed up to `last_change` — the integral
    /// of `width / requested` over wall time, the budget the engine's
    /// walltime enforcement runs on.
    consumed: f64,
    /// Node-seconds held up to `last_change` (∫ width dt).
    node_seconds: f64,
    /// Total reshape cost charged so far, node-seconds.
    reshape_cost: f64,
    /// Reshapes applied during this attempt.
    reshapes: u32,
}

impl RunState {
    #[inline]
    fn width_factor(&self) -> f64 {
        self.nodes.len() as f64 / self.requested.max(1) as f64
    }

    /// `consumed` extended to `t` at the current width.
    fn consumed_at(&self, t: Seconds) -> f64 {
        self.consumed + (t - self.last_change).max(0.0) * self.width_factor()
    }

    /// `node_seconds` extended to `t` at the current width.
    fn node_seconds_at(&self, t: Seconds) -> f64 {
        self.node_seconds + (t - self.last_change).max(0.0) * self.nodes.len() as f64
    }
}

/// Replays a [`DecisionTrace`] and checks it against a [`SimOutcome`].
pub struct Auditor<'a> {
    truth: &'a CoRunTruth,
    config: &'a SimConfig,
    queue_order: bool,
}

impl<'a> Auditor<'a> {
    /// An auditor for runs produced under `config` with ground truth
    /// `truth` (the same values the engine ran with).
    pub fn new(truth: &'a CoRunTruth, config: &'a SimConfig) -> Self {
        Auditor {
            truth,
            config,
            queue_order: false,
        }
    }

    /// Additionally checks backfill queue-jump justification: a start that
    /// leapfrogs the queue head is only legal when the head could not have
    /// started exclusively (fewer idle nodes than it requests). All
    /// policies in [`nodeshare_core`'s lineup] satisfy this; policies that
    /// batch out-of-order decisions in one round may not, so it is opt-in.
    pub fn with_queue_order_check(mut self) -> Self {
        self.queue_order = true;
        self
    }

    /// Replays `trace`, checking every event and the final accounting
    /// against `outcome`. Returns the re-derived totals on success, or
    /// every violation found (never just the first).
    pub fn audit(
        &self,
        trace: &DecisionTrace,
        outcome: &SimOutcome,
    ) -> Result<AuditSummary, Vec<Violation>> {
        Replay::new(self, outcome).run(trace)
    }
}

struct Replay<'a> {
    auditor: &'a Auditor<'a>,
    outcome: &'a SimOutcome,
    jobs: BTreeMap<JobId, JobInfo>,
    running: BTreeMap<JobId, RunState>,
    /// Latest termination per job (requeued jobs terminate once).
    finished: BTreeMap<JobId, (Seconds, bool)>,
    occupants: Vec<Vec<JobId>>,
    up: Vec<bool>,
    /// Per-job `(∫ width dt, Σ reshape cost)` of finished attempts that
    /// reshaped at least once, for the work-conservation record check.
    reshaped_usage: BTreeMap<JobId, (f64, f64)>,
    /// Piecewise integration state.
    last_time: Seconds,
    busy_cs: f64,
    shared_cs: f64,
    summary: AuditSummary,
    violations: Vec<Violation>,
}

impl<'a> Replay<'a> {
    fn new(auditor: &'a Auditor<'a>, outcome: &'a SimOutcome) -> Self {
        let n = auditor.config.cluster.node_count as usize;
        Replay {
            auditor,
            outcome,
            jobs: BTreeMap::new(),
            running: BTreeMap::new(),
            finished: BTreeMap::new(),
            occupants: vec![Vec::new(); n],
            up: vec![true; n],
            reshaped_usage: BTreeMap::new(),
            last_time: 0.0,
            busy_cs: 0.0,
            shared_cs: 0.0,
            summary: AuditSummary::default(),
            violations: Vec::new(),
        }
    }

    fn flag(
        &mut self,
        invariant: &'static str,
        job: Option<JobId>,
        node: Option<NodeId>,
        time: Seconds,
        detail: String,
    ) {
        self.violations.push(Violation {
            invariant,
            job,
            node,
            time,
            detail,
        });
    }

    fn cores_per_node(&self) -> f64 {
        self.auditor.config.cluster.node.cores() as f64
    }

    fn occupied_and_shared(&self) -> (usize, usize) {
        let occupied = self.occupants.iter().filter(|o| !o.is_empty()).count();
        let shared = self.occupants.iter().filter(|o| o.len() >= 2).count();
        (occupied, shared)
    }

    /// Integrates the occupancy step function up to `t`.
    fn advance(&mut self, t: Seconds) {
        if t > self.last_time {
            let (occupied, shared) = self.occupied_and_shared();
            let cores = self.cores_per_node();
            self.busy_cs += (t - self.last_time) * occupied as f64 * cores;
            self.shared_cs += (t - self.last_time) * shared as f64 * cores;
            self.last_time = t;
        }
    }

    fn run(mut self, trace: &DecisionTrace) -> Result<AuditSummary, Vec<Violation>> {
        self.summary.events = trace.len();
        for event in trace.events() {
            self.advance(event.time());
            self.step(event);
        }
        self.advance(self.outcome.end_time);
        self.check_accounting();
        self.check_termination();
        self.check_records();
        if self.violations.is_empty() {
            self.summary.busy_core_seconds = self.busy_cs;
            self.summary.shared_core_seconds = self.shared_cs;
            Ok(self.summary)
        } else {
            Err(self.violations)
        }
    }

    fn step(&mut self, event: &TraceEvent) {
        match event {
            TraceEvent::Submitted {
                time,
                job,
                app,
                nodes,
                walltime_estimate,
                share_eligible,
                malleable,
            } => {
                if self.jobs.contains_key(job) {
                    self.flag(
                        "unique-submission",
                        Some(*job),
                        None,
                        *time,
                        "submitted twice".into(),
                    );
                }
                self.jobs.insert(
                    *job,
                    JobInfo {
                        submit: *time,
                        app: *app,
                        nodes: *nodes,
                        walltime_estimate: *walltime_estimate,
                        share_eligible: *share_eligible,
                        malleable: *malleable,
                        rejected: false,
                    },
                );
            }
            TraceEvent::Rejected { time, job } => match self.jobs.get_mut(job) {
                Some(info) => info.rejected = true,
                None => self.flag(
                    "rejection-of-known-job",
                    Some(*job),
                    None,
                    *time,
                    "rejected a job that was never submitted".into(),
                ),
            },
            TraceEvent::Started {
                time,
                job,
                mode,
                nodes,
                idle_before,
                head_waiting,
                partners,
                ..
            } => self.step_started(
                *time,
                *job,
                *mode,
                nodes,
                *idle_before,
                head_waiting,
                partners,
            ),
            TraceEvent::Finished { time, job, killed } => self.step_finished(*time, *job, *killed),
            TraceEvent::Reshape {
                time,
                job,
                from,
                to,
                cost,
            } => self.step_reshape(*time, *job, from, to, *cost),
            TraceEvent::Requeued { time, job, node } => {
                self.summary.requeues += 1;
                match self.running.remove(job) {
                    Some(run) => {
                        if !run.nodes.contains(node) {
                            self.flag(
                                "requeue-from-resident-node",
                                Some(*job),
                                Some(*node),
                                *time,
                                format!("requeued off {node} but ran on {:?}", run.nodes),
                            );
                        }
                        for &n in &run.nodes {
                            self.occupants[n.index()].retain(|&j| j != *job);
                        }
                    }
                    None => self.flag(
                        "requeue-of-running-job",
                        Some(*job),
                        Some(*node),
                        *time,
                        "requeued while not running".into(),
                    ),
                }
            }
            TraceEvent::NodeDown { time, node, cause } => {
                if node.index() >= self.up.len() {
                    self.flag(
                        "known-node",
                        None,
                        Some(*node),
                        *time,
                        "down event for a node outside the cluster".into(),
                    );
                    return;
                }
                if *cause == DownCause::Failed && !self.occupants[node.index()].is_empty() {
                    self.flag(
                        "failed-node-emptied",
                        self.occupants[node.index()].first().copied(),
                        Some(*node),
                        *time,
                        "node failed with resident jobs not requeued".into(),
                    );
                }
                self.up[node.index()] = false;
            }
            TraceEvent::NodeUp { time, node } => {
                if node.index() >= self.up.len() {
                    self.flag(
                        "known-node",
                        None,
                        Some(*node),
                        *time,
                        "up event for a node outside the cluster".into(),
                    );
                    return;
                }
                self.up[node.index()] = true;
            }
            TraceEvent::Occupancy {
                time,
                busy_cores,
                shared_nodes,
            } => {
                let (occupied, shared) = self.occupied_and_shared();
                let replayed_busy = occupied as u64 * self.cores_per_node() as u64;
                if replayed_busy != *busy_cores {
                    self.flag(
                        "occupancy-busy-cores",
                        None,
                        None,
                        *time,
                        format!(
                            "engine reports {busy_cores} busy cores, replay says {replayed_busy}"
                        ),
                    );
                }
                if shared != *shared_nodes {
                    self.flag(
                        "occupancy-shared-nodes",
                        None,
                        None,
                        *time,
                        format!("engine reports {shared_nodes} shared nodes, replay says {shared}"),
                    );
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn step_started(
        &mut self,
        time: Seconds,
        job: JobId,
        mode: ShareMode,
        nodes: &[NodeId],
        idle_before: usize,
        head_waiting: &Option<(JobId, u32)>,
        partners: &[(NodeId, JobId)],
    ) {
        self.summary.starts += 1;
        if mode == ShareMode::Shared {
            self.summary.shared_starts += 1;
        }
        let Some(info) = self.jobs.get(&job).cloned() else {
            self.flag(
                "start-of-submitted-job",
                Some(job),
                None,
                time,
                "started a job that was never submitted".into(),
            );
            return;
        };
        if info.rejected {
            self.flag(
                "no-start-after-rejection",
                Some(job),
                None,
                time,
                "started a job the system rejected at submission".into(),
            );
        }
        if time + 1e-9 < info.submit {
            self.flag(
                "no-start-before-submit",
                Some(job),
                None,
                time,
                format!("started at {time} but submitted at {}", info.submit),
            );
        }
        if self.running.contains_key(&job) {
            self.flag(
                "single-residency",
                Some(job),
                None,
                time,
                "started while already running".into(),
            );
        }
        if nodes.len() != info.nodes as usize {
            self.flag(
                "node-count-matches-request",
                Some(job),
                None,
                time,
                format!("granted {} nodes, requested {}", nodes.len(), info.nodes),
            );
        }
        if mode == ShareMode::Shared && !info.share_eligible {
            self.flag(
                "share-eligibility",
                Some(job),
                None,
                time,
                "co-allocated a job that did not opt into sharing".into(),
            );
        }
        // Per-node placement legality and compatibility.
        let smt = self.auditor.config.cluster.node.smt as usize;
        let mut replay_partners: Vec<(NodeId, JobId)> = Vec::new();
        for &n in nodes {
            if n.index() >= self.occupants.len() {
                self.flag(
                    "known-node",
                    Some(job),
                    Some(n),
                    time,
                    "start on a node outside the cluster".into(),
                );
                continue;
            }
            if !self.up[n.index()] {
                self.flag(
                    "start-on-up-node",
                    Some(job),
                    Some(n),
                    time,
                    "start on a down/drained node".into(),
                );
            }
            let residents = self.occupants[n.index()].clone();
            match mode {
                ShareMode::Exclusive if !residents.is_empty() => {
                    self.flag(
                        "exclusive-means-alone",
                        Some(job),
                        Some(n),
                        time,
                        format!("exclusive start on a node hosting {residents:?}"),
                    );
                }
                ShareMode::Exclusive => {}
                ShareMode::Shared => {
                    if residents.len() + 1 > smt {
                        self.flag(
                            "smt-capacity",
                            Some(job),
                            Some(n),
                            time,
                            format!(
                                "{} co-residents exceed the node's {smt} lanes",
                                residents.len() + 1
                            ),
                        );
                    }
                    for &other in &residents {
                        replay_partners.push((n, other));
                        let Some(oinfo) = self.jobs.get(&other).cloned() else {
                            continue;
                        };
                        if !oinfo.share_eligible {
                            self.flag(
                                "share-eligibility",
                                Some(other),
                                Some(n),
                                time,
                                format!("{job} placed next to non-sharing {other}"),
                            );
                        }
                        if self
                            .running
                            .get(&other)
                            .is_some_and(|r| r.mode != ShareMode::Shared)
                        {
                            self.flag(
                                "exclusive-means-alone",
                                Some(other),
                                Some(n),
                                time,
                                format!("{job} placed next to exclusively-running {other}"),
                            );
                        }
                        let rate = self.auditor.truth.pair_matrix().rate(info.app, oinfo.app);
                        let back = self.auditor.truth.pair_matrix().rate(oinfo.app, info.app);
                        if !(rate.is_finite() && rate > 0.0 && back.is_finite() && back > 0.0) {
                            self.flag(
                                "compatible-pairing",
                                Some(job),
                                Some(n),
                                time,
                                format!(
                                    "pair ({:?}, {:?}) has no positive finite co-run rate",
                                    info.app, oinfo.app
                                ),
                            );
                        }
                    }
                }
            }
        }
        // The engine's recorded partner list must match the replay's view.
        let mut recorded = partners.to_vec();
        let mut derived = replay_partners;
        recorded.sort();
        derived.sort();
        if recorded != derived {
            self.flag(
                "partner-list-faithful",
                Some(job),
                recorded.first().or(derived.first()).map(|(n, _)| *n),
                time,
                format!("trace says partners {recorded:?}, replay says {derived:?}"),
            );
        }
        // Backfill justification (opt-in): leapfrogging the head is only
        // legal when the head could not have started on the idle nodes.
        if self.auditor.queue_order {
            if let Some((head, head_nodes)) = head_waiting {
                if idle_before >= *head_nodes as usize {
                    self.flag(
                        "queue-order",
                        Some(job),
                        None,
                        time,
                        format!(
                            "jumped waiting head {head} although {idle_before} idle nodes \
                             could have started its {head_nodes}-node request"
                        ),
                    );
                }
            }
        }
        for &n in nodes {
            if n.index() < self.occupants.len() {
                self.occupants[n.index()].push(job);
            }
        }
        self.running.insert(
            job,
            RunState {
                mode,
                nodes: nodes.to_vec(),
                requested: info.nodes,
                last_change: time,
                consumed: 0.0,
                node_seconds: 0.0,
                reshape_cost: 0.0,
                reshapes: 0,
            },
        );
    }

    /// Replays one reshape: checks the contract, the node-set algebra,
    /// the target nodes, and rolls the width-dependent accounting
    /// forward.
    fn step_reshape(
        &mut self,
        time: Seconds,
        job: JobId,
        from: &[NodeId],
        to: &[NodeId],
        cost: f64,
    ) {
        self.summary.reshapes += 1;
        let Some(run) = self.running.get(&job).cloned() else {
            self.flag(
                "reshape-of-running-job",
                Some(job),
                to.first().copied(),
                time,
                "reshaped while not running".into(),
            );
            return;
        };
        let info = self.jobs.get(&job).cloned();
        if let Some(info) = &info {
            if info.malleable.is_rigid() {
                self.flag(
                    "no-reshape-of-rigid-job",
                    Some(job),
                    to.first().copied(),
                    time,
                    "reshaped a job with a rigid contract".into(),
                );
            } else if !info.malleable.admits(to.len() as u32) {
                self.flag(
                    "reshape-width-in-range",
                    Some(job),
                    to.first().copied(),
                    time,
                    format!(
                        "reshaped to width {} outside the contract's [{}, {}]",
                        to.len(),
                        info.malleable.min_nodes,
                        info.malleable.max_nodes
                    ),
                );
            }
            if !close(cost, f64::from(info.malleable.reshape_cost)) {
                self.flag(
                    "reshape-cost-matches-contract",
                    Some(job),
                    None,
                    time,
                    format!(
                        "trace charges {cost} node-seconds, contract says {}",
                        info.malleable.reshape_cost
                    ),
                );
            }
        }
        if run.mode != ShareMode::Exclusive {
            self.flag(
                "reshape-of-exclusive-job",
                Some(job),
                to.first().copied(),
                time,
                "reshaped a shared-mode allocation".into(),
            );
        }
        if from != run.nodes.as_slice() {
            self.flag(
                "reshape-from-set-faithful",
                Some(job),
                from.first().copied(),
                time,
                format!("trace says from {from:?}, replay says {:?}", run.nodes),
            );
        }
        if to.len() == run.nodes.len() {
            self.flag(
                "reshape-changes-width",
                Some(job),
                to.first().copied(),
                time,
                format!("reshape kept width {}", to.len()),
            );
        } else if to.len() < run.nodes.len() {
            for n in to {
                if !run.nodes.contains(n) {
                    self.flag(
                        "reshape-keeps-held-nodes",
                        Some(job),
                        Some(*n),
                        time,
                        format!("shrink kept {n} which the job did not hold"),
                    );
                }
            }
        } else {
            for n in &run.nodes {
                if !to.contains(n) {
                    self.flag(
                        "reshape-keeps-held-nodes",
                        Some(job),
                        Some(*n),
                        time,
                        format!("grow dropped held node {n}"),
                    );
                }
            }
        }
        // Added nodes must be idle and up; dropped nodes lose the job.
        for &n in to {
            if n.index() >= self.occupants.len() {
                self.flag(
                    "known-node",
                    Some(job),
                    Some(n),
                    time,
                    "reshape onto a node outside the cluster".into(),
                );
                continue;
            }
            if run.nodes.contains(&n) {
                continue;
            }
            if !self.up[n.index()] {
                self.flag(
                    "grow-on-idle-up-nodes",
                    Some(job),
                    Some(n),
                    time,
                    "grew onto a down/drained node".into(),
                );
            }
            if !self.occupants[n.index()].is_empty() {
                self.flag(
                    "grow-on-idle-up-nodes",
                    Some(job),
                    Some(n),
                    time,
                    format!("grew onto {n} hosting {:?}", self.occupants[n.index()]),
                );
            }
        }
        for &n in &run.nodes {
            if n.index() < self.occupants.len() {
                self.occupants[n.index()].retain(|&j| j != job);
            }
        }
        for &n in to {
            if n.index() < self.occupants.len() {
                self.occupants[n.index()].push(job);
            }
        }
        // detlint: allow(D5, the entry was cloned from the map above)
        let run = self.running.get_mut(&job).expect("checked above");
        run.consumed = run.consumed_at(time);
        run.node_seconds = run.node_seconds_at(time);
        run.last_change = time;
        run.nodes = to.to_vec();
        run.reshape_cost += cost;
        run.reshapes += 1;
    }

    fn step_finished(&mut self, time: Seconds, job: JobId, killed: bool) {
        self.summary.finished += 1;
        if killed {
            self.summary.killed += 1;
        }
        let Some(run) = self.running.remove(&job) else {
            self.flag(
                "finish-of-running-job",
                Some(job),
                None,
                time,
                "finished while not running".into(),
            );
            return;
        };
        for &n in &run.nodes {
            if n.index() < self.occupants.len() {
                self.occupants[n.index()].retain(|&j| j != job);
            }
        }
        if let Some(info) = self.jobs.get(&job) {
            if self.auditor.config.enforce_walltime {
                let grace = match run.mode {
                    ShareMode::Shared => self.auditor.config.shared_walltime_grace.max(1.0),
                    ShareMode::Exclusive => 1.0,
                };
                // The budget is normalized: a reshaped job consumes it in
                // proportion to its current width over its requested
                // width. For never-reshaped jobs this is exactly the
                // elapsed wall time. Reshape charges are system-initiated,
                // so each extends the bound by `cost / requested` — the
                // engine must never kill a job over work it imposed.
                let bound = info.walltime_estimate * grace
                    + run.reshape_cost / f64::from(info.nodes.max(1));
                let ran = run.consumed_at(time);
                if ran > bound + 1e-6 {
                    self.flag(
                        "walltime-enforced",
                        Some(job),
                        run.nodes.first().copied(),
                        time,
                        format!(
                            "consumed {ran:.3}s of normalized walltime, past its \
                             enforced bound of {bound:.3}s"
                        ),
                    );
                }
            }
        }
        if run.reshapes > 0 {
            self.reshaped_usage
                .insert(job, (run.node_seconds_at(time), run.reshape_cost));
        }
        self.finished.insert(job, (time, killed));
    }

    fn check_accounting(&mut self) {
        let end = self.outcome.end_time;
        if !close(self.busy_cs, self.outcome.busy_core_seconds) {
            self.flag(
                "node-second-conservation",
                None,
                None,
                end,
                format!(
                    "outcome accounts {} busy core-seconds, replay derives {}",
                    self.outcome.busy_core_seconds, self.busy_cs
                ),
            );
        }
        if !close(self.shared_cs, self.outcome.shared_core_seconds) {
            self.flag(
                "shared-second-conservation",
                None,
                None,
                end,
                format!(
                    "outcome accounts {} shared core-seconds, replay derives {}",
                    self.outcome.shared_core_seconds, self.shared_cs
                ),
            );
        }
    }

    fn check_termination(&mut self) {
        let end = self.outcome.end_time;
        for (&job, _) in self.running.iter() {
            self.violations.push(Violation {
                invariant: "no-job-left-running",
                job: Some(job),
                node: None,
                time: end,
                detail: "still running when the event queue drained".into(),
            });
        }
        let all_terminated = self
            .jobs
            .iter()
            .all(|(id, info)| info.rejected || self.finished.contains_key(id));
        if self.outcome.complete() && !all_terminated {
            let missing: Vec<JobId> = self
                .jobs
                .iter()
                .filter(|(id, info)| !info.rejected && !self.finished.contains_key(id))
                .map(|(id, _)| *id)
                .collect();
            self.flag(
                "complete-means-all-terminated",
                missing.first().copied(),
                None,
                end,
                format!("outcome claims completion but {missing:?} never terminated"),
            );
        }
        if !self.outcome.complete() && all_terminated && self.running.is_empty() {
            self.flag(
                "complete-means-all-terminated",
                self.outcome.unscheduled.first().copied(),
                None,
                end,
                format!(
                    "every submitted job terminated yet outcome lists {:?} unscheduled",
                    self.outcome.unscheduled
                ),
            );
        }
        for &job in &self.outcome.rejected {
            if self.jobs.get(&job).is_none_or(|info| !info.rejected) {
                self.flag(
                    "rejection-list-faithful",
                    Some(job),
                    None,
                    end,
                    "outcome lists a rejection the trace never recorded".into(),
                );
            }
        }
    }

    fn check_records(&mut self) {
        let end = self.outcome.end_time;
        for r in &self.outcome.records {
            match self.finished.get(&r.id) {
                None => self.flag(
                    "record-has-trace-finish",
                    Some(r.id),
                    None,
                    end,
                    "outcome has a record for a job the trace never finished".into(),
                ),
                Some(&(t, killed)) => {
                    if !close(t, r.finish) {
                        self.flag(
                            "record-times-faithful",
                            Some(r.id),
                            None,
                            end,
                            format!("record finish {} vs traced finish {t}", r.finish),
                        );
                    }
                    if killed != r.killed {
                        self.flag(
                            "record-kill-flag-faithful",
                            Some(r.id),
                            None,
                            end,
                            format!("record killed={} vs traced killed={killed}", r.killed),
                        );
                    }
                    if r.start + 1e-9 < r.submit {
                        self.flag(
                            "no-start-before-submit",
                            Some(r.id),
                            None,
                            end,
                            format!("record start {} precedes submit {}", r.start, r.submit),
                        );
                    }
                    // Work conservation across reshapes: a clean (not
                    // killed, never restarted, unsalvaged) exclusive job
                    // that reshaped must have held exactly its work plus
                    // every reshape charge in node-seconds —
                    // ∫ width dt = requested × runtime + Σ costs.
                    if let Some(&(held, cost)) = self.reshaped_usage.get(&r.id) {
                        let owed = f64::from(r.nodes) * r.runtime_exclusive + cost;
                        if !r.killed
                            && r.restarts == 0
                            && r.salvaged_work == 0.0
                            && !close(held, owed)
                        {
                            self.flag(
                                "reshape-work-conservation",
                                Some(r.id),
                                None,
                                end,
                                format!(
                                    "held {held:.6} node-seconds but owed {owed:.6} \
                                     ({} nodes × {:.6}s work + {cost:.6} reshape cost)",
                                    r.nodes, r.runtime_exclusive
                                ),
                            );
                        }
                    }
                }
            }
        }
        let recorded = self.outcome.records.len();
        let traced = self.finished.len();
        if recorded != traced {
            self.flag(
                "record-finish-bijection",
                None,
                None,
                end,
                format!("{recorded} outcome records vs {traced} traced terminations"),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violation_display_names_everything() {
        let v = Violation {
            invariant: "node-second-conservation",
            job: Some(JobId(7)),
            node: Some(NodeId(3)),
            time: 123.456,
            detail: "off by 42".into(),
        };
        let s = v.to_string();
        assert!(s.contains("node-second-conservation"));
        assert!(s.contains("job7"));
        assert!(s.contains("n0003"));
        assert!(s.contains("off by 42"));
        assert!(s.contains("123.456"));
    }

    #[test]
    fn tolerance_is_relative_and_absolute() {
        assert!(close(0.0, 0.0));
        assert!(close(1e9, 1e9 + 0.5));
        assert!(!close(100.0, 101.0));
    }
}
