//! What schedulers see and what they may decide.
//!
//! The engine owns the [`Scheduler`] trait; scheduling policies (in
//! `nodeshare-core`) implement it. The context deliberately exposes only
//! scheduler-legal information: user walltime *estimates*, never true
//! runtimes — exactly the information asymmetry a real batch system has.

use crate::progress::RunningJob;
use nodeshare_cluster::{Cluster, JobId, NodeId, ShareMode};
use nodeshare_perf::AppId;
use nodeshare_workload::{JobSpec, Malleability, Seconds};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Scheduler-visible summary of a running job.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RunningSummary {
    /// The job.
    pub job: JobId,
    /// Application it runs.
    pub app: AppId,
    /// Current width: the number of nodes the job holds *now*. Equals
    /// the requested width unless a reshape changed it.
    pub nodes: u32,
    /// Width the job originally requested (and started at).
    pub requested_nodes: u32,
    /// The job's width-malleability contract ([`Malleability::RIGID`]
    /// for ordinary jobs). Policies may only issue
    /// [`Decision::Reshape`] for running exclusive jobs whose contract
    /// admits the new width.
    pub malleable: Malleability,
    /// Start time.
    pub start: Seconds,
    /// The user's walltime estimate.
    pub walltime_estimate: Seconds,
    /// Absolute time at which the job will be killed if still running.
    /// For shared-mode jobs this includes the co-allocation walltime
    /// grace (see [`crate::SimConfig::shared_walltime_grace`]).
    pub kill_at: Seconds,
    /// Whether the job opted into sharing.
    pub share_eligible: bool,
    /// Allocation mode it started with.
    pub mode: ShareMode,
}

impl RunningSummary {
    /// Latest possible end — the kill bound. Backfill reservations plan
    /// against this.
    #[inline]
    pub fn est_end(&self) -> Seconds {
        self.kill_at
    }

    fn of(r: &RunningJob, kill_at: Seconds) -> RunningSummary {
        RunningSummary {
            job: r.spec.id,
            app: r.spec.app,
            nodes: r.nodes.len() as u32,
            requested_nodes: r.spec.nodes,
            malleable: r.spec.malleable,
            start: r.start,
            walltime_estimate: r.spec.walltime_estimate,
            kill_at,
            share_eligible: r.spec.share_eligible,
            mode: r.mode,
        }
    }
}

/// Everything a policy may consult when deciding.
pub struct SchedContext<'a> {
    /// Current simulation time.
    pub now: Seconds,
    /// Waiting jobs in submission order (head = oldest).
    pub queue: &'a [JobSpec],
    /// Cluster occupancy (read-only).
    pub cluster: &'a Cluster,
    /// Running jobs, ordered by id for deterministic iteration.
    pub running: &'a BTreeMap<JobId, RunningSummary>,
    /// Walltime grace factor shared-mode jobs receive (engine
    /// configuration the policy must plan with: a job it starts shared
    /// will be killed at `start + estimate × shared_grace`).
    pub shared_grace: f64,
    /// Completed-job records so far, in completion order. Lets policies
    /// learn from history (e.g. walltime-estimate correction); append-only
    /// across invocations within one run.
    pub completed: &'a [nodeshare_metrics::JobRecord],
    /// Scheduler-side telemetry instruments, when the run collects
    /// telemetry (see [`crate::telemetry::SimTelemetry`]). Policies bump
    /// these to report decision counts, backfill scan depth, and pairing
    /// hit rates; `None` means the run is untelemetered and policies
    /// skip the bookkeeping entirely.
    pub telemetry: Option<&'a crate::telemetry::SchedTelemetry>,
}

impl SchedContext<'_> {
    /// Estimated-end summaries of the jobs resident on `node`, for
    /// co-allocation planning.
    pub fn residents(&self, node: NodeId) -> Vec<&RunningSummary> {
        self.cluster
            .node(node)
            .map(|n| {
                n.occupants()
                    .iter()
                    .filter_map(|j| self.running.get(j))
                    .collect()
            })
            .unwrap_or_default()
    }
}

/// A start decision returned by a policy. The engine validates and
/// applies it; an inapplicable decision is a policy bug and panics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Decision {
    /// Start `job` exclusively on `nodes` (all lanes).
    StartExclusive {
        /// The queued job to start.
        job: JobId,
        /// Idle nodes to occupy; length must equal the job's node request.
        nodes: Vec<NodeId>,
    },
    /// Start `job` in shared mode, taking one lane on each node. Nodes may
    /// be idle or host share-eligible co-runners.
    StartShared {
        /// The queued job to start.
        job: JobId,
        /// Target nodes; length must equal the job's node request.
        nodes: Vec<NodeId>,
    },
    /// Reshape a *running* exclusive malleable job to a new node set.
    ///
    /// `nodes` is the complete post-reshape allocation: a shrink keeps a
    /// strict subset of the current nodes; a grow keeps every current
    /// node and adds idle up nodes. The new width must lie within the
    /// job's `[min_nodes, max_nodes]` contract and differ from the
    /// current width. The engine re-rates the job, charges the contract's
    /// reshape cost against its remaining work, and records a
    /// [`crate::trace::TraceEvent::Reshape`].
    Reshape {
        /// The running job to reshape.
        job: JobId,
        /// The complete new node set.
        nodes: Vec<NodeId>,
    },
}

impl Decision {
    /// The job this decision concerns.
    pub fn job(&self) -> JobId {
        match self {
            Decision::StartExclusive { job, .. }
            | Decision::StartShared { job, .. }
            | Decision::Reshape { job, .. } => *job,
        }
    }

    /// The nodes this decision uses (for a reshape, the complete new
    /// allocation).
    pub fn nodes(&self) -> &[NodeId] {
        match self {
            Decision::StartExclusive { nodes, .. }
            | Decision::StartShared { nodes, .. }
            | Decision::Reshape { nodes, .. } => nodes,
        }
    }

    /// Allocation mode of the decision. Reshapes only apply to
    /// exclusive allocations, so a [`Decision::Reshape`] is exclusive.
    pub fn mode(&self) -> ShareMode {
        match self {
            Decision::StartExclusive { .. } | Decision::Reshape { .. } => ShareMode::Exclusive,
            Decision::StartShared { .. } => ShareMode::Shared,
        }
    }

    /// True for a [`Decision::Reshape`].
    pub fn is_reshape(&self) -> bool {
        matches!(self, Decision::Reshape { .. })
    }
}

/// A scheduling policy.
///
/// The engine invokes `schedule` whenever the world may have changed (job
/// arrival, completion, kill, periodic tick) and re-invokes it until it
/// returns no decisions, so a policy may start one job per call or many.
pub trait Scheduler {
    /// Policy name for reports (e.g. `"easy-backfill"`).
    fn name(&self) -> &'static str;

    /// Inspects the context and returns jobs to start now.
    fn schedule(&mut self, ctx: &SchedContext<'_>) -> Vec<Decision>;

    /// Justifies one of this invocation's decisions for the decision
    /// trace ([`crate::trace::TraceEvent::Started`]). Called with the
    /// same context `schedule` saw, before the decision is applied. The
    /// default derives the reason from queue position and target-node
    /// occupancy; policies with first-hand intent (a pure FCFS policy, a
    /// backfiller that knows which hole it filled) may override it.
    fn explain(&self, ctx: &SchedContext<'_>, decision: &Decision) -> crate::trace::StartReason {
        crate::trace::StartReason::classify(ctx, decision)
    }

    /// Justifies a whole invocation's decisions at once, against the
    /// same pre-apply context. The engine calls this (not `explain`)
    /// when tracing, so policies that can amortize the justification
    /// scan across decisions — the default classifier shares one queue
    /// pass via [`crate::trace::StartReason::classify_all`] — stop
    /// paying a per-decision re-scan. The default delegates to
    /// `explain` per decision, so overriding only `explain` keeps
    /// working; wrapper policies must forward this method to preserve
    /// their inner policy's batching.
    fn explain_all(
        &self,
        ctx: &SchedContext<'_>,
        decisions: &[Decision],
    ) -> Vec<crate::trace::StartReason> {
        decisions.iter().map(|d| self.explain(ctx, d)).collect()
    }
}

pub(crate) fn summary_of(r: &RunningJob, kill_at: Seconds) -> RunningSummary {
    RunningSummary::of(r, kill_at)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decision_accessors() {
        let d = Decision::StartShared {
            job: JobId(4),
            nodes: vec![NodeId(1), NodeId(2)],
        };
        assert_eq!(d.job(), JobId(4));
        assert_eq!(d.nodes(), &[NodeId(1), NodeId(2)]);
        assert_eq!(d.mode(), ShareMode::Shared);
        let e = Decision::StartExclusive {
            job: JobId(5),
            nodes: vec![NodeId(0)],
        };
        assert_eq!(e.mode(), ShareMode::Exclusive);
        assert_eq!(e.job(), JobId(5));
    }

    #[test]
    fn est_end_is_the_kill_bound() {
        let s = RunningSummary {
            job: JobId(1),
            app: AppId(0),
            nodes: 2,
            requested_nodes: 2,
            malleable: Malleability::RIGID,
            start: 100.0,
            walltime_estimate: 50.0,
            kill_at: 175.0, // shared grace applied
            share_eligible: true,
            mode: ShareMode::Shared,
        };
        assert_eq!(s.est_end(), 175.0);
    }
}
