//! Simulation results.

use nodeshare_cluster::{ClusterSpec, JobId};
use nodeshare_metrics::{CampaignMetrics, JobRecord, StepSeries};
use nodeshare_workload::Seconds;
use serde::{Deserialize, Serialize};

/// Everything a finished simulation produced.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SimOutcome {
    /// Total discrete events the engine processed — the denominator of
    /// the events/sec throughput figure reported by the perf harness.
    /// Defaults to 0 when deserializing outcomes written before the
    /// field existed.
    #[serde(default)]
    pub events_processed: u64,
    /// Name of the policy that ran.
    pub scheduler: String,
    /// Per-job records, in job-id order. Empty in lean runs
    /// (`SimConfig::retain_detail = false`); use
    /// [`SimOutcome::completed_jobs`] for the count there.
    pub records: Vec<JobRecord>,
    /// Jobs that finished (including walltime kills). Always counted,
    /// even when `records` is not retained. Defaults to 0 when
    /// deserializing outcomes written before the field existed.
    #[serde(default)]
    pub completed_jobs: u64,
    /// Highest waiting-job count ever observed — the figure that bounds
    /// a streamed run's memory. Defaults to 0 on old outcomes.
    #[serde(default)]
    pub peak_queue_depth: f64,
    /// Integrated busy physical-core seconds.
    pub busy_core_seconds: f64,
    /// Integrated core-seconds during which nodes hosted two jobs.
    pub shared_core_seconds: f64,
    /// Time of the last processed event. Note: with fault injection this
    /// includes failure/repair events that fire after the last job
    /// finished; use the records (or [`SimOutcome::metrics`] makespan)
    /// for campaign duration.
    pub end_time: Seconds,
    /// Jobs that were still waiting when the simulation ran out of events
    /// — non-empty means the policy dead-locked the queue.
    pub unscheduled: Vec<JobId>,
    /// Jobs rejected at arrival because no cluster configuration could
    /// ever run them (more nodes than the machine has, or more memory
    /// than a node offers) — mirrors `sbatch` rejections.
    pub rejected: Vec<JobId>,
    /// Busy physical cores over time.
    pub busy_cores: StepSeries,
    /// Cores of doubly-occupied nodes over time.
    pub shared_cores: StepSeries,
    /// Waiting-job count over time.
    pub queue_depth: StepSeries,
    /// ASCII occupancy maps captured at `SimConfig::snapshot_times`.
    pub snapshots: Vec<(Seconds, String)>,
}

impl SimOutcome {
    /// Campaign metrics for this run.
    pub fn metrics(&self, spec: &ClusterSpec) -> CampaignMetrics {
        CampaignMetrics::compute(
            &self.records,
            spec,
            self.busy_core_seconds,
            self.shared_core_seconds,
        )
    }

    /// Quick sanity flag: every job ran and finished.
    pub fn complete(&self) -> bool {
        self.unscheduled.is_empty()
    }
}
