//! Fault injection: random node failures with repair, and planned
//! maintenance windows.
//!
//! Failures are the classic exponential model: each node fails
//! independently with the configured MTBF, stays down for `repair_time`,
//! then returns. A failing node kills every resident job (both lanes — a
//! crash takes the whole node); killed jobs are **requeued** and restart
//! from scratch (no checkpointing), which is how plain SLURM handles
//! `--requeue` jobs on node failure.
//!
//! Maintenance windows drain a node set ahead of time: running jobs
//! finish, no new work lands until the window closes.
//!
//! All failure times are sampled up front from the config seed, so runs
//! remain bit-deterministic.

use nodeshare_cluster::NodeId;
use nodeshare_workload::Seconds;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Random node-failure model.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FailureModel {
    /// Mean time between failures *per node*, seconds.
    pub mtbf_per_node: Seconds,
    /// Time a failed node stays down before returning, seconds.
    pub repair_time: Seconds,
    /// Seed for the failure process (independent of workload seeds).
    pub seed: u64,
}

impl FailureModel {
    /// Samples the failure times of `node_count` nodes over `[0, horizon]`.
    ///
    /// Returns `(time, node)` pairs in no particular order; each node may
    /// fail repeatedly (fail → repair → fail …).
    pub fn sample_failures(&self, node_count: u32, horizon: Seconds) -> Vec<(Seconds, NodeId)> {
        assert!(self.mtbf_per_node > 0.0, "MTBF must be positive");
        assert!(self.repair_time >= 0.0, "repair time must be non-negative");
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let mut out = Vec::new();
        for n in 0..node_count {
            let mut t = 0.0;
            loop {
                // Exponential(1/mtbf) via inverse CDF.
                let u: f64 = 1.0 - rng.random::<f64>();
                t += -u.ln() * self.mtbf_per_node;
                if t > horizon {
                    break;
                }
                out.push((t, NodeId(n)));
                t += self.repair_time;
            }
        }
        out
    }
}

/// A planned maintenance window: the nodes are drained at `start`
/// (running jobs finish, nothing new starts) and resumed at `end`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MaintenanceWindow {
    /// Nodes to drain.
    pub nodes: Vec<NodeId>,
    /// Drain begins.
    pub start: Seconds,
    /// Nodes return to service.
    pub end: Seconds,
}

impl MaintenanceWindow {
    /// Validates the window.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes.is_empty() {
            return Err("maintenance window needs nodes".into());
        }
        if self.end <= self.start || self.end.is_nan() || self.start.is_nan() {
            return Err("maintenance window must have positive length".into());
        }
        if self.start < 0.0 {
            return Err("maintenance window cannot start before time zero".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failure_sampling_is_deterministic_and_bounded() {
        let m = FailureModel {
            mtbf_per_node: 10_000.0,
            repair_time: 500.0,
            seed: 9,
        };
        let a = m.sample_failures(16, 100_000.0);
        let b = m.sample_failures(16, 100_000.0);
        assert_eq!(a, b);
        assert!(a.iter().all(|&(t, n)| t <= 100_000.0 && n.0 < 16));
        // ~10 failures expected per node over 10 MTBFs; loose bounds.
        let per_node = a.len() as f64 / 16.0;
        assert!(per_node > 4.0 && per_node < 16.0, "per node {per_node}");
    }

    #[test]
    fn failure_rate_scales_with_mtbf() {
        let horizon = 200_000.0;
        let fast = FailureModel {
            mtbf_per_node: 5_000.0,
            repair_time: 0.0,
            seed: 1,
        };
        let slow = FailureModel {
            mtbf_per_node: 50_000.0,
            repair_time: 0.0,
            seed: 1,
        };
        let nf = fast.sample_failures(8, horizon).len() as f64;
        let ns = slow.sample_failures(8, horizon).len() as f64;
        assert!(nf / ns > 5.0, "fast {nf} slow {ns}");
    }

    #[test]
    fn repair_time_spaces_failures() {
        let m = FailureModel {
            mtbf_per_node: 100.0,
            repair_time: 1_000.0,
            seed: 2,
        };
        let mut times: Vec<f64> = m
            .sample_failures(1, 50_000.0)
            .into_iter()
            .map(|(t, _)| t)
            .collect();
        times.sort_by(f64::total_cmp);
        for w in times.windows(2) {
            assert!(w[1] - w[0] >= 1_000.0, "failures during repair");
        }
    }

    #[test]
    fn window_validation() {
        let ok = MaintenanceWindow {
            nodes: vec![NodeId(0)],
            start: 10.0,
            end: 20.0,
        };
        assert!(ok.validate().is_ok());
        assert!(MaintenanceWindow {
            nodes: vec![],
            ..ok.clone()
        }
        .validate()
        .is_err());
        assert!(MaintenanceWindow {
            start: 20.0,
            end: 20.0,
            nodes: vec![NodeId(0)],
        }
        .validate()
        .is_err());
        assert!(MaintenanceWindow {
            start: -1.0,
            end: 20.0,
            nodes: vec![NodeId(0)],
        }
        .validate()
        .is_err());
    }
}
