//! The simulation driver: wires workload, cluster, contention truth, and
//! a scheduling policy into one deterministic discrete-event run.

use crate::audit::Auditor;
use crate::events::{Event, EventQueue, QueueBackend};
use crate::faults::{FailureModel, MaintenanceWindow};
use crate::outcome::SimOutcome;
use crate::progress::RunningJob;
use crate::telemetry::SimTelemetry;
use crate::trace::{DecisionTrace, DownCause, StartReason, TraceEvent};
use crate::view::{summary_of, Decision, SchedContext, Scheduler};
use nodeshare_cluster::{AdminState, Allocation, Cluster, ClusterSpec, JobId, NodeId, ShareMode};
use nodeshare_metrics::{JobRecord, StepAccum, StepSeries};
use nodeshare_perf::CoRunTruth;
use nodeshare_workload::{JobSource, JobSpec, Seconds, Workload};
use std::collections::{BTreeMap, VecDeque};

/// Engine configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct SimConfig {
    /// Cluster to simulate.
    pub cluster: ClusterSpec,
    /// Kill jobs at their walltime estimate (real batch systems do; the
    /// EASY reservation guarantee depends on it).
    pub enforce_walltime: bool,
    /// Optional periodic scheduler invocation (SLURM's backfill interval).
    /// Event-driven invocation happens regardless; most policies don't
    /// need a tick.
    pub sched_tick: Option<Seconds>,
    /// Walltime grace factor for jobs started in shared mode: the system
    /// kills them at `start + estimate × grace` instead of
    /// `start + estimate`, compensating for co-allocation slowdown the
    /// system itself introduced. Schedulers see the padded bound
    /// ([`crate::RunningSummary::kill_at`]) and plan reservations with
    /// it, so backfill guarantees hold. 1.0 disables the grace.
    pub shared_walltime_grace: f64,
    /// Optional random node failures: failed nodes kill (and requeue)
    /// their resident jobs, stay down for the repair time, then return.
    pub failures: Option<FailureModel>,
    /// Horizon over which failures are pre-sampled. Must cover the
    /// campaign; failures past the horizon simply never fire.
    pub failure_horizon: Seconds,
    /// Planned maintenance windows (drain → resume).
    pub maintenance: Vec<MaintenanceWindow>,
    /// Application-level checkpointing: when set, a job requeued by a
    /// node failure resumes from its last completed multiple of this many
    /// *work* seconds instead of from scratch. `None` = no checkpointing
    /// (plain SLURM `--requeue` semantics).
    pub checkpoint_interval: Option<Seconds>,
    /// Times at which to capture an ASCII occupancy map of the cluster
    /// (delivered in [`SimOutcome::snapshots`]).
    pub snapshot_times: Vec<Seconds>,
    /// Hard event budget; exceeded means a runaway policy. Generous
    /// default: ~40 events per job covers every policy in this workspace.
    pub max_events: u64,
    /// Record a [`DecisionTrace`] and replay-audit it against the outcome
    /// when the run ends, panicking on any violated invariant (see
    /// [`crate::audit::Auditor`]). Defaults to on in debug builds (so
    /// every test run is audited) and off in release builds (benchmark
    /// runs pay no tracing cost).
    pub audit: bool,
    /// Event-queue implementation. The calendar queue (default) keeps
    /// push/pop near O(1) at million-entry depths; the binary heap is
    /// retained for differential testing and benchmarks. Both produce
    /// bit-identical pop orders, so this is purely a performance knob.
    pub queue_backend: QueueBackend,
    /// Retain per-job [`JobRecord`]s and step-series change points in the
    /// outcome (the default). `false` is *lean mode* for million-job
    /// runs: memory stays bounded by in-flight state, the outcome keeps
    /// exact counts and integrals ([`SimOutcome::completed_jobs`],
    /// [`SimOutcome::peak_queue_depth`], `busy_core_seconds`) but
    /// `records` and the series come back empty — so per-job metrics and
    /// history-driven policies (which read `SchedContext::completed`)
    /// see nothing. Incompatible with `audit` (the auditor replays
    /// records).
    pub retain_detail: bool,
}

impl SimConfig {
    /// Default config for a given cluster spec.
    pub fn new(cluster: ClusterSpec) -> Self {
        SimConfig {
            cluster,
            enforce_walltime: true,
            sched_tick: None,
            shared_walltime_grace: 1.5,
            failures: None,
            failure_horizon: 30.0 * 86_400.0,
            maintenance: Vec::new(),
            checkpoint_interval: None,
            snapshot_times: Vec::new(),
            max_events: 50_000_000,
            audit: cfg!(debug_assertions),
            queue_backend: QueueBackend::default(),
            retain_detail: true,
        }
    }
}

/// Jobs per chunk when an in-memory [`Workload`] is streamed through the
/// engine: large enough to amortize refill bookkeeping, small enough that
/// the pending buffer stays cache-resident.
const STREAM_CHUNK_JOBS: usize = 8192;

/// Runs `workload` under `scheduler` and returns the outcome.
///
/// Ground-truth co-run rates come from `truth`; the policy never sees
/// them (it plans with whatever predictor it was built with).
///
/// Internally this streams the workload through [`run_streamed`] — a
/// materialized workload is just the trivial [`JobSource`]. The event
/// order, and therefore every outcome byte, is identical either way.
///
/// # Panics
/// Panics when the policy returns an inapplicable decision (unknown job,
/// wrong node count, occupied nodes, share-rule violations) — those are
/// policy bugs, not recoverable conditions — or when `max_events` is
/// exceeded.
pub fn run(
    workload: &Workload,
    truth: &CoRunTruth,
    scheduler: &mut dyn Scheduler,
    config: &SimConfig,
) -> SimOutcome {
    let mut source = workload.source(STREAM_CHUNK_JOBS);
    run_streamed(&mut source, truth, scheduler, config)
}

/// Like [`run`], but always records and returns the full
/// [`DecisionTrace`] alongside the outcome (no implicit audit — callers
/// hand the trace to an [`Auditor`] themselves, possibly with extra
/// checks enabled, or export it).
pub fn run_traced(
    workload: &Workload,
    truth: &CoRunTruth,
    scheduler: &mut dyn Scheduler,
    config: &SimConfig,
) -> (SimOutcome, DecisionTrace) {
    let mut source = workload.source(STREAM_CHUNK_JOBS);
    run_streamed_traced(&mut source, truth, scheduler, config)
}

/// Like [`run`], but collects runtime telemetry into `telemetry`: engine
/// counters/gauges/latency histograms, scheduler perf counters (exposed
/// to the policy through [`SchedContext::telemetry`]), and periodic
/// [`crate::telemetry::TelemetrySample`]s every
/// `telemetry.sample_interval` seconds of simulation time.
///
/// Telemetry does not alter scheduling decisions or outcomes — the same
/// workload/config/policy produces an identical [`SimOutcome`] with or
/// without it. No audit is implied; compose with [`run_traced`] manually
/// if both are wanted.
pub fn run_with_telemetry(
    workload: &Workload,
    truth: &CoRunTruth,
    scheduler: &mut dyn Scheduler,
    config: &SimConfig,
    telemetry: &SimTelemetry,
) -> SimOutcome {
    let mut source = workload.source(STREAM_CHUNK_JOBS);
    run_streamed_with_telemetry(&mut source, truth, scheduler, config, telemetry)
}

/// [`run_traced`] and [`run_with_telemetry`] combined: records the full
/// decision trace *and* collects telemetry, so a campaign can be both
/// replay-audited and observed in one run. No implicit audit.
pub fn run_traced_with_telemetry(
    workload: &Workload,
    truth: &CoRunTruth,
    scheduler: &mut dyn Scheduler,
    config: &SimConfig,
    telemetry: &SimTelemetry,
) -> (SimOutcome, DecisionTrace) {
    let mut source = workload.source(STREAM_CHUNK_JOBS);
    run_streamed_traced_with_telemetry(&mut source, truth, scheduler, config, telemetry)
}

/// Runs a streaming [`JobSource`] under `scheduler` — the million-job
/// entry point. Only in-flight and queued jobs stay resident; the engine
/// pulls the next chunk whenever the earliest pending event reaches the
/// source's horizon.
///
/// For any source, the simulated event order is identical to
/// materializing the same jobs into a [`Workload`] and calling [`run`]
/// (arrivals occupy a dedicated tie-break band in the event queue, so
/// late insertion cannot reorder them). One caveat for tick-driven
/// configs (`sched_tick`): a source that cannot report exhaustion
/// eagerly — e.g. a trace file whose trailing lines are all filtered
/// out — may keep the periodic tick armed slightly longer than the
/// materialized run, adding tick events after the last job finished.
/// All bundled sources report exhaustion eagerly.
///
/// # Panics
/// Panics on policy bugs (as [`run`]) and on a misbehaving source:
/// delivery out of `(submit, id)` order, invalid specs, horizon
/// violations, no progress, or an `Err` from the source itself.
pub fn run_streamed(
    source: &mut dyn JobSource,
    truth: &CoRunTruth,
    scheduler: &mut dyn Scheduler,
    config: &SimConfig,
) -> SimOutcome {
    if !config.audit {
        let (outcome, _) = Engine::new(source, truth, config, false, None).run(scheduler);
        return outcome;
    }
    let (outcome, trace) = run_streamed_traced(source, truth, scheduler, config);
    if let Err(violations) = Auditor::new(truth, config).audit(&trace, &outcome) {
        let mut msg = format!(
            "audit of scheduler {:?} found {} violation(s):",
            outcome.scheduler,
            violations.len()
        );
        for v in &violations {
            msg.push_str("\n  ");
            msg.push_str(&v.to_string());
        }
        panic!("{msg}");
    }
    outcome
}

/// [`run_streamed`] recording the full [`DecisionTrace`] (no implicit
/// audit).
pub fn run_streamed_traced(
    source: &mut dyn JobSource,
    truth: &CoRunTruth,
    scheduler: &mut dyn Scheduler,
    config: &SimConfig,
) -> (SimOutcome, DecisionTrace) {
    let (outcome, trace) = Engine::new(source, truth, config, true, None).run(scheduler);
    // detlint: allow(D5, run_traced always requests tracing)
    (outcome, trace.expect("tracing was requested"))
}

/// [`run_streamed`] collecting runtime telemetry. Note the `event_queue`
/// gauge in periodic samples reflects *delivered-but-unfired* arrivals
/// only, so it legitimately differs from a materialized run (where every
/// arrival is queued up front); counters and outcomes do not differ.
pub fn run_streamed_with_telemetry(
    source: &mut dyn JobSource,
    truth: &CoRunTruth,
    scheduler: &mut dyn Scheduler,
    config: &SimConfig,
    telemetry: &SimTelemetry,
) -> SimOutcome {
    let (outcome, _) = Engine::new(source, truth, config, false, Some(telemetry)).run(scheduler);
    outcome
}

/// [`run_streamed_traced`] and [`run_streamed_with_telemetry`] combined.
pub fn run_streamed_traced_with_telemetry(
    source: &mut dyn JobSource,
    truth: &CoRunTruth,
    scheduler: &mut dyn Scheduler,
    config: &SimConfig,
    telemetry: &SimTelemetry,
) -> (SimOutcome, DecisionTrace) {
    let (outcome, trace) = Engine::new(source, truth, config, true, Some(telemetry)).run(scheduler);
    // detlint: allow(D5, run_traced always requests tracing)
    (outcome, trace.expect("tracing was requested"))
}

struct Engine<'a> {
    truth: &'a CoRunTruth,
    config: &'a SimConfig,
    source: &'a mut dyn JobSource,
    /// `source.size_hint()` captured at construction, for logging.
    source_hint: usize,
    /// Jobs delivered by the source whose arrival events have not fired
    /// yet. Arrivals pop in delivery order (see [`EventQueue::push`]'s
    /// band rule), so this is a plain FIFO.
    pending: VecDeque<JobSpec>,
    /// Reusable chunk scratch handed to `source.next_chunk`.
    chunk_buf: Vec<JobSpec>,
    /// Index stamped on the next `Event::Arrival` — delivery order, which
    /// equals the materialized workload's `(submit, id)` index.
    next_arrival_idx: usize,
    /// Every job the source delivers later has `submit >= horizon`.
    horizon: Seconds,
    source_done: bool,
    /// Monotonicity check on source deliveries.
    last_delivered_submit: Seconds,
    cluster: Cluster,
    events: EventQueue,
    queue: Vec<JobSpec>,
    running: BTreeMap<JobId, RunningJob>,
    running_view: BTreeMap<JobId, crate::view::RunningSummary>,
    records: Vec<JobRecord>,
    /// Completions including walltime kills; equals `records.len()` when
    /// detail is retained, and keeps counting when it is not.
    completed_count: u64,
    busy_cores: StepSeries,
    shared_cores: StepSeries,
    queue_depth: StepSeries,
    /// O(1) companions to the three series, kept in both modes: lean runs
    /// take integrals/maxima from these, full runs use them only for
    /// [`SimOutcome::peak_queue_depth`].
    busy_acc: StepAccum,
    shared_acc: StepAccum,
    depth_acc: StepAccum,
    now: Seconds,
    processed: u64,
    /// Requeue counter per job (node failures).
    attempts: BTreeMap<JobId, u32>,
    /// Checkpointed work salvaged for requeued jobs, exclusive-seconds.
    salvage: BTreeMap<JobId, f64>,
    /// Salvage applied at each running job's (latest) start.
    salvaged_at_start: BTreeMap<JobId, f64>,
    /// Captured occupancy snapshots.
    snapshots: Vec<(Seconds, String)>,
    /// Jobs rejected at arrival as unsatisfiable.
    rejected: Vec<JobId>,
    /// Globally unique completion-event generations: requeued jobs must
    /// never collide with their previous attempt's event stamps.
    gen_counter: u64,
    /// Reusable scratch for the affected-co-runner dedup in
    /// [`Engine::finish`]/[`Engine::requeue`]; avoids a fresh `Vec` per
    /// release on the hot path.
    affected_buf: Vec<JobId>,
    /// Decision trace, recorded when tracing/auditing is requested.
    trace: Option<DecisionTrace>,
    /// Runtime telemetry sink; `None` costs one branch per site.
    telemetry: Option<&'a SimTelemetry>,
    /// Simulation time of the next periodic telemetry sample.
    next_sample: Seconds,
}

impl<'a> Engine<'a> {
    fn new(
        source: &'a mut dyn JobSource,
        truth: &'a CoRunTruth,
        config: &'a SimConfig,
        traced: bool,
        telemetry: Option<&'a SimTelemetry>,
    ) -> Self {
        assert!(
            config.retain_detail || !config.audit,
            "lean mode (retain_detail = false) discards the job records the \
             auditor replays; disable audit for lean runs"
        );
        let mut events = EventQueue::with_backend(config.queue_backend);
        if let Some(tick) = config.sched_tick {
            assert!(tick > 0.0, "scheduler tick must be positive");
            events.push(tick, Event::SchedulerTick);
        }
        if let Some(failures) = &config.failures {
            for (t, node) in
                failures.sample_failures(config.cluster.node_count, config.failure_horizon)
            {
                events.push(t, Event::NodeFail(node));
            }
        }
        for (i, &t) in config.snapshot_times.iter().enumerate() {
            events.push(t, Event::Snapshot(i));
        }
        for window in &config.maintenance {
            // detlint: allow(D5, invariant stated in the expect message; violating it is a bug, not a recoverable state)
            window.validate().expect("invalid maintenance window");
            for &node in &window.nodes {
                events.push(window.start, Event::DrainStart(node));
                events.push(window.end, Event::DrainEnd(node));
            }
        }
        let source_hint = source.size_hint().unwrap_or(0);
        Engine {
            truth,
            config,
            source,
            source_hint,
            pending: VecDeque::new(),
            chunk_buf: Vec::new(),
            next_arrival_idx: 0,
            horizon: f64::NEG_INFINITY,
            source_done: false,
            last_delivered_submit: f64::NEG_INFINITY,
            cluster: Cluster::new(config.cluster),
            events,
            queue: Vec::new(),
            running: BTreeMap::new(),
            running_view: BTreeMap::new(),
            records: Vec::new(),
            completed_count: 0,
            busy_cores: StepSeries::new(),
            shared_cores: StepSeries::new(),
            queue_depth: StepSeries::new(),
            busy_acc: StepAccum::new(),
            shared_acc: StepAccum::new(),
            depth_acc: StepAccum::new(),
            now: 0.0,
            processed: 0,
            attempts: BTreeMap::new(),
            salvage: BTreeMap::new(),
            salvaged_at_start: BTreeMap::new(),
            snapshots: Vec::new(),
            rejected: Vec::new(),
            gen_counter: 1,
            affected_buf: Vec::new(),
            trace: traced.then(DecisionTrace::new),
            telemetry,
            next_sample: 0.0,
        }
    }

    /// Mints a globally unique completion-event generation.
    fn next_gen(&mut self) -> u64 {
        let g = self.gen_counter;
        self.gen_counter += 1;
        g
    }

    /// Records one trace event when tracing is on.
    fn trace_ev(&mut self, event: TraceEvent) {
        if let Some(t) = &mut self.trace {
            t.push(event);
        }
    }

    /// Pulls chunks until every event at or past the earliest pending
    /// event's time is guaranteed delivered — i.e. until the horizon lies
    /// strictly past the next pop (or the source is exhausted). Called
    /// before every pop, this is what makes streamed and materialized
    /// runs pop the exact same event sequence: an arrival can only be
    /// delivered late if its submit is at or past the horizon, and we
    /// never pop at or past the horizon.
    fn refill(&mut self) {
        while !self.source_done {
            match self.events.peek_time() {
                Some(t) if t < self.horizon => break,
                _ => self.pull_chunk(),
            }
        }
    }

    /// One `next_chunk` call: validates, queues arrival events, and
    /// advances the horizon. Panics on a misbehaving source — a silent
    /// repair would quietly change results.
    fn pull_chunk(&mut self) {
        let mut buf = std::mem::take(&mut self.chunk_buf);
        buf.clear();
        let res = self.source.next_chunk(&mut buf);
        let delivered = buf.len();
        for job in buf.drain(..) {
            job.validate()
                .unwrap_or_else(|e| panic!("job source delivered an invalid spec: {e}"));
            assert!(
                job.submit >= self.last_delivered_submit,
                "job source delivered {} out of submit order",
                job.id
            );
            // `self.horizon` still holds the *previous* call's promise
            // here; it only advances after the chunk is ingested.
            assert!(
                job.submit >= self.horizon,
                "job source broke its horizon promise at {}",
                job.id
            );
            self.last_delivered_submit = job.submit;
            self.events
                .push(job.submit, Event::Arrival(self.next_arrival_idx));
            self.next_arrival_idx += 1;
            self.pending.push_back(job);
        }
        self.chunk_buf = buf;
        match res {
            Ok(Some(h)) => {
                assert!(
                    delivered > 0 || h > self.horizon,
                    "job source made no progress (no jobs, horizon stuck at {h})"
                );
                self.horizon = self.horizon.max(h);
            }
            Ok(None) => {
                self.source_done = true;
                self.horizon = f64::INFINITY;
            }
            Err(e) => panic!("job source failed: {e}"),
        }
    }

    /// Records the waiting-job count on the depth accumulator and, in
    /// full mode, the step series.
    fn record_depth(&mut self) {
        let v = self.queue.len() as f64;
        self.depth_acc.record(self.now, v);
        if self.config.retain_detail {
            self.queue_depth.record(self.now, v);
        }
    }

    fn run(mut self, scheduler: &mut dyn Scheduler) -> (SimOutcome, Option<DecisionTrace>) {
        if let Some(t) = self.telemetry {
            t.note_strategy(scheduler.name());
            nodeshare_obs::debug!(
                "engine",
                "run started";
                strategy = scheduler.name(),
                jobs = self.source_hint,
                nodes = self.config.cluster.node_count
            );
        }
        loop {
            self.refill();
            let Some((time, event)) = self.events.pop() else {
                break;
            };
            debug_assert!(time + 1e-9 >= self.now, "event time went backwards");
            if let Some(t) = self.telemetry {
                // Periodic state samples land *before* the event that
                // crosses the sample instant, so each sample reflects the
                // world as of its own timestamp.
                while self.next_sample <= time {
                    t.record_sample(
                        self.next_sample,
                        self.queue.len(),
                        self.running.len(),
                        self.completed_count as usize,
                        self.events.len(),
                        &self.cluster,
                    );
                    self.next_sample += t.sample_interval;
                }
            }
            let _event_span = self.telemetry.map(|t| {
                t.events_total.inc();
                SimTelemetry::time(&t.event_seconds)
            });
            self.now = time.max(self.now);
            self.processed += 1;
            assert!(
                self.processed <= self.config.max_events,
                "event budget exceeded at t={}: runaway policy?",
                self.now
            );
            match event {
                Event::Arrival(_) => {
                    // Arrivals pop in delivery order (dedicated tie-break
                    // band + per-arrival sequence), so the FIFO front is
                    // always the right spec — owned, no clone.
                    let job = self
                        .pending
                        .pop_front()
                        // detlint: allow(D5, invariant stated in the expect message; violating it is a bug, not a recoverable state)
                        .expect("arrival event without a delivered spec");
                    self.trace_ev(TraceEvent::Submitted {
                        time: self.now,
                        job: job.id,
                        app: job.app,
                        nodes: job.nodes,
                        walltime_estimate: job.walltime_estimate,
                        share_eligible: job.share_eligible,
                        malleable: job.malleable,
                    });
                    // Requests no configuration of this machine can ever
                    // satisfy are rejected at submission, as sbatch does —
                    // otherwise an FCFS head would deadlock the queue.
                    if job.nodes > self.config.cluster.node_count
                        || u64::from(job.mem_per_node_mib) > self.config.cluster.node.mem_mib
                    {
                        self.rejected.push(job.id);
                        if let Some(t) = self.telemetry {
                            t.rejected.inc();
                            nodeshare_obs::debug!(
                                "engine",
                                "job rejected as unsatisfiable";
                                job = job.id,
                                nodes = job.nodes,
                                mem_per_node_mib = job.mem_per_node_mib
                            );
                        }
                        self.trace_ev(TraceEvent::Rejected {
                            time: self.now,
                            job: job.id,
                        });
                        continue;
                    }
                    self.queue.push(job);
                    self.record_depth();
                    self.invoke(scheduler);
                }
                Event::Completion { job, generation } => {
                    let stale = self
                        .running
                        .get(&job)
                        .map(|r| r.generation != generation)
                        .unwrap_or(true);
                    if stale {
                        continue;
                    }
                    self.finish(job, false);
                    self.invoke(scheduler);
                }
                Event::WalltimeKill { job, arm } => {
                    if let Some(r) = self.running.get_mut(&job) {
                        if r.kill_arm != arm {
                            continue; // re-armed by a restart or reshape since
                        }
                        r.advance_to(self.now);
                        let done = r.is_complete();
                        // A job finishing exactly at its limit completed.
                        self.finish(job, !done);
                        self.invoke(scheduler);
                    }
                }
                Event::SchedulerTick => {
                    self.invoke(scheduler);
                    // Re-arm while arrivals may still come (delivered but
                    // unfired, or the source has more) or jobs run. The
                    // bundled sources report exhaustion eagerly, so this
                    // matches the materialized `arrivals_pending > 0`
                    // condition exactly.
                    if !self.pending.is_empty() || !self.source_done || !self.running.is_empty() {
                        // detlint: allow(D5, invariant stated in the expect message; violating it is a bug, not a recoverable state)
                        let tick = self.config.sched_tick.expect("tick event implies tick");
                        self.events.push(self.now + tick, Event::SchedulerTick);
                    }
                }
                Event::NodeFail(node) => {
                    self.fail_node(node);
                    self.invoke(scheduler);
                }
                Event::NodeRepair(node) => {
                    // detlint: allow(D5, invariant stated in the expect message; violating it is a bug, not a recoverable state)
                    self.cluster.resume(node).expect("repaired node exists");
                    self.trace_ev(TraceEvent::NodeUp {
                        time: self.now,
                        node,
                    });
                    self.invoke(scheduler);
                }
                Event::DrainStart(node) => {
                    // detlint: allow(D5, invariant stated in the expect message; violating it is a bug, not a recoverable state)
                    self.cluster.drain(node).expect("drained node exists");
                    self.trace_ev(TraceEvent::NodeDown {
                        time: self.now,
                        node,
                        cause: DownCause::Drained,
                    });
                }
                Event::Snapshot(_) => {
                    self.snapshots.push((
                        self.now,
                        nodeshare_cluster::render_occupancy(&self.cluster, 32),
                    ));
                }
                Event::DrainEnd(node) => {
                    // Only undo the drain; a node that failed during its
                    // window stays down until its repair event.
                    if self
                        .cluster
                        .node(node)
                        .is_some_and(|n| n.admin_state() == AdminState::Drained)
                    {
                        // detlint: allow(D5, invariant stated in the expect message; violating it is a bug, not a recoverable state)
                        self.cluster.resume(node).expect("node exists");
                        self.trace_ev(TraceEvent::NodeUp {
                            time: self.now,
                            node,
                        });
                        self.invoke(scheduler);
                    }
                }
            }
        }

        debug_assert!(
            self.pending.is_empty() && self.source_done,
            "event queue drained with undelivered or unfired arrivals"
        );
        if let Some(t) = self.telemetry {
            // One closing sample at the end time (replacing a periodic
            // sample that landed exactly there, so final state wins).
            t.record_sample(
                self.now,
                self.queue.len(),
                self.running.len(),
                self.completed_count as usize,
                self.events.len(),
                &self.cluster,
            );
            nodeshare_obs::debug!(
                "engine",
                "run finished";
                strategy = scheduler.name(),
                end_time = self.now,
                completed = self.completed_count,
                unscheduled = self.queue.len(),
                events = self.processed
            );
        }

        let end = self.now;
        let trace = self.trace;
        // Full mode integrates the retained series — byte-identical to
        // what this engine always produced; lean mode falls back to the
        // O(1) accumulators (equal up to fp grouping of same-instant
        // updates).
        let (busy_cs, shared_cs) = if self.config.retain_detail {
            (
                self.busy_cores.integral(0.0, end),
                self.shared_cores.integral(0.0, end),
            )
        } else {
            (
                self.busy_acc.integral_to(end),
                self.shared_acc.integral_to(end),
            )
        };
        let outcome = SimOutcome {
            events_processed: self.processed,
            scheduler: scheduler.name().to_string(),
            records: {
                let mut r = self.records;
                r.sort_by_key(|rec| rec.id);
                r
            },
            completed_jobs: self.completed_count,
            busy_core_seconds: busy_cs,
            shared_core_seconds: shared_cs,
            peak_queue_depth: self.depth_acc.max_value(),
            end_time: end,
            unscheduled: self.queue.iter().map(|j| j.id).collect(),
            busy_cores: self.busy_cores,
            shared_cores: self.shared_cores,
            queue_depth: self.queue_depth,
            snapshots: self.snapshots,
            rejected: self.rejected,
        };
        (outcome, trace)
    }

    /// Calls the policy until it has nothing more to start.
    fn invoke(&mut self, scheduler: &mut dyn Scheduler) {
        // Each round must start at least one job, so `queue.len()` rounds
        // bound the fixpoint iteration.
        for _ in 0..=self.queue.len() {
            let decisions: Vec<(Decision, StartReason)> = {
                let _invoke_span = self
                    .telemetry
                    .map(|t| SimTelemetry::time(&t.invoke_seconds));
                let ctx = SchedContext {
                    now: self.now,
                    queue: &self.queue,
                    cluster: &self.cluster,
                    running: &self.running_view,
                    shared_grace: self.config.shared_walltime_grace,
                    completed: &self.records,
                    telemetry: self.telemetry.map(|t| &t.sched),
                };
                let decided = scheduler.schedule(&ctx);
                // Batch the justification: one explain_all call shares
                // the queue scan across the invocation's decisions
                // instead of re-running `explain` per decision.
                let reasons = if self.trace.is_some() && !decided.is_empty() {
                    scheduler.explain_all(&ctx, &decided)
                } else {
                    vec![StartReason::Unspecified; decided.len()]
                };
                assert_eq!(
                    reasons.len(),
                    decided.len(),
                    "explain_all must justify every decision"
                );
                decided.into_iter().zip(reasons).collect()
            };
            if decisions.is_empty() {
                return;
            }
            if let Some(t) = self.telemetry {
                t.sched.decisions.add(decisions.len() as u64);
            }
            for (d, reason) in decisions {
                self.apply(d, reason);
            }
        }
    }

    /// Applies one start decision. Panics on policy bugs.
    fn apply(&mut self, decision: Decision, reason: StartReason) {
        let decision = match decision {
            Decision::Reshape { job, nodes } => {
                self.apply_reshape(job, nodes);
                return;
            }
            start => start,
        };
        let job_id = decision.job();
        let pos = self
            .queue
            .iter()
            .position(|j| j.id == job_id)
            .unwrap_or_else(|| panic!("policy started {job_id} which is not queued"));
        // Trace context captured before any state changes: who was still
        // waiting ahead, and how many nodes were idle.
        let idle_before = self.cluster.idle_count();
        let head_waiting = (pos != 0).then(|| (self.queue[0].id, self.queue[0].nodes));
        let spec = self.queue.remove(pos);
        self.record_depth();
        assert_eq!(
            decision.nodes().len(),
            spec.nodes as usize,
            "policy gave {} nodes to {} which requested {}",
            decision.nodes().len(),
            job_id,
            spec.nodes
        );
        let mode = decision.mode();
        if mode == ShareMode::Shared {
            assert!(
                spec.share_eligible,
                "policy co-allocated {job_id} which did not opt into sharing"
            );
            for &n in decision.nodes() {
                // `lane_owners` may repeat a multi-lane resident; the
                // assertion is idempotent, and skipping the dedup keeps
                // this validation allocation-free.
                // detlint: allow(D5, invariant stated in the expect message; violating it is a bug, not a recoverable state)
                for resident in self.cluster.node(n).expect("node exists").lane_owners() {
                    let r = &self.running[&resident];
                    assert!(
                        r.spec.share_eligible,
                        "policy co-allocated {job_id} next to non-sharing {resident}"
                    );
                }
            }
        }
        let result = {
            let _alloc_span = self.telemetry.map(|t| SimTelemetry::time(&t.alloc_seconds));
            match mode {
                ShareMode::Exclusive => self
                    .cluster
                    .allocate_exclusive(job_id, decision.nodes(), spec.mem_per_node_mib.into())
                    .map(|_| ()),
                ShareMode::Shared => self
                    .cluster
                    .allocate_shared(job_id, decision.nodes(), spec.mem_per_node_mib.into())
                    .map(|_| ()),
            }
        };
        if let Err(e) = result {
            panic!("policy decision for {job_id} failed: {e}");
        }
        if let Some(t) = self.telemetry {
            match mode {
                ShareMode::Exclusive => t.starts_exclusive.inc(),
                ShareMode::Shared => t.starts_shared.inc(),
            }
        }

        let walltime = spec.walltime_estimate;
        let salvaged = self.salvage.remove(&job_id).unwrap_or(0.0);
        self.salvaged_at_start.insert(job_id, salvaged);
        let mut running = RunningJob {
            start: self.now,
            nodes: decision.nodes().to_vec(),
            mode,
            work_done: salvaged,
            rate: 1.0,
            last_update: self.now,
            generation: 0,
            shared_node_seconds: 0.0,
            shared_nodes_now: 0,
            walltime_consumed: 0.0,
            walltime_credit: 0.0,
            kill_arm: 0,
            spec,
        };
        let partners = self.cluster.co_runners(job_id);
        let affected: Vec<JobId> = partners.iter().map(|&(_, co)| co).collect();
        self.trace_ev(TraceEvent::Started {
            time: self.now,
            job: job_id,
            mode,
            nodes: decision.nodes().to_vec(),
            reason,
            idle_before,
            head_waiting,
            partners,
        });
        {
            let running_tbl = &self.running;
            running.rerate_with(&self.cluster, self.truth, |co| running_tbl[&co].spec.app);
        }
        running.generation = self.next_gen();
        self.events.push(
            running.eta(self.now),
            Event::Completion {
                job: job_id,
                generation: running.generation,
            },
        );
        let grace = match mode {
            ShareMode::Shared => self.config.shared_walltime_grace.max(1.0),
            ShareMode::Exclusive => 1.0,
        };
        let kill_at = self.now + walltime * grace;
        if self.config.enforce_walltime {
            running.kill_arm = self.next_gen();
            self.events.push(
                kill_at,
                Event::WalltimeKill {
                    job: job_id,
                    arm: running.kill_arm,
                },
            );
        }
        self.running_view
            .insert(job_id, summary_of(&running, kill_at));
        self.running.insert(job_id, running);
        for co in affected {
            self.rerate_job(co);
        }
        self.record_occupancy();
    }

    /// Applies a [`Decision::Reshape`]: moves a running exclusive
    /// malleable job to its new node set, charges the contract's reshape
    /// cost against its progress, re-rates it under the width-scaled
    /// model, and re-arms its completion and walltime-kill events.
    /// Panics on policy bugs (rigid/shared/unknown job, width outside
    /// the contract, a node set that is not a shrink-subset or
    /// grow-superset of the current allocation, busy or down added
    /// nodes).
    fn apply_reshape(&mut self, job_id: JobId, new_nodes: Vec<NodeId>) {
        let mut r = self
            .running
            .remove(&job_id)
            .unwrap_or_else(|| panic!("policy reshaped {job_id} which is not running"));
        let contract = r.spec.malleable;
        assert!(
            !contract.is_rigid(),
            "policy reshaped {job_id} which has a rigid contract"
        );
        assert_eq!(
            r.mode,
            ShareMode::Exclusive,
            "policy reshaped {job_id} which runs in shared mode"
        );
        let new_w = new_nodes.len() as u32;
        assert!(
            contract.admits(new_w),
            "policy reshaped {job_id} to width {new_w} outside [{}, {}]",
            contract.min_nodes,
            contract.max_nodes
        );
        assert_ne!(
            new_w as usize,
            r.nodes.len(),
            "policy reshaped {job_id} to its current width"
        );
        // A shrink keeps a strict subset of the held nodes; a grow keeps
        // every held node and adds (idle, up — the allocator enforces
        // that) nodes.
        if (new_w as usize) < r.nodes.len() {
            for n in &new_nodes {
                assert!(
                    r.nodes.contains(n),
                    "shrink of {job_id} kept {n} which it does not hold"
                );
            }
        } else {
            for n in &r.nodes {
                assert!(
                    new_nodes.contains(n),
                    "grow of {job_id} dropped held node {n}"
                );
            }
        }
        // Settle progress and normalized-walltime consumption at the old
        // width before anything changes.
        r.advance_to(self.now);
        let from = std::mem::replace(&mut r.nodes, new_nodes);
        {
            let _release_span = self
                .telemetry
                .map(|t| SimTelemetry::time(&t.release_seconds));
            self.cluster
                .release(job_id)
                // detlint: allow(D5, invariant stated in the expect message; violating it is a bug, not a recoverable state)
                .expect("reshaped job held an allocation");
        }
        let result = {
            let _alloc_span = self.telemetry.map(|t| SimTelemetry::time(&t.alloc_seconds));
            self.cluster
                .allocate_exclusive(job_id, &r.nodes, r.spec.mem_per_node_mib.into())
        };
        if let Err(e) = result {
            panic!("reshape of {job_id} failed: {e}");
        }
        // The contract's cost is in node-seconds; progress is measured in
        // exclusive-rate seconds at the requested width, so the charge is
        // cost / requested_width. `work_done` may go (further) negative —
        // that is simply more work left to do.
        // The charge is system-initiated, so the same amount is credited
        // to the walltime allowance: a reshape must never push a job over
        // the bound the *user* was held to.
        let cost = f64::from(contract.reshape_cost);
        r.work_done -= cost / f64::from(r.spec.nodes);
        r.walltime_credit += cost / f64::from(r.spec.nodes);
        self.trace_ev(TraceEvent::Reshape {
            time: self.now,
            job: job_id,
            from,
            to: r.nodes.clone(),
            cost,
        });
        if let Some(t) = self.telemetry {
            t.reshapes.inc();
        }
        // Exclusive mode means no co-residents on either node set, so
        // only the job itself re-rates.
        {
            let running_tbl = &self.running;
            r.rerate_with(&self.cluster, self.truth, |co| running_tbl[&co].spec.app);
        }
        r.generation = self.next_gen();
        self.events.push(
            r.eta(self.now),
            Event::Completion {
                job: job_id,
                generation: r.generation,
            },
        );
        // Re-arm the walltime kill: the remaining normalized allowance
        // (exclusive jobs get no grace, but accumulated reshape credit
        // extends the bound) burns at `new_width / requested` per wall
        // second from here on.
        let allowance = r.spec.walltime_estimate + r.walltime_credit;
        let remaining = (allowance - r.walltime_consumed).max(0.0);
        let kill_at = self.now + remaining / r.width_factor();
        if self.config.enforce_walltime {
            r.kill_arm = self.next_gen();
            self.events.push(
                kill_at,
                Event::WalltimeKill {
                    job: job_id,
                    arm: r.kill_arm,
                },
            );
        }
        self.running_view.insert(job_id, summary_of(&r, kill_at));
        self.running.insert(job_id, r);
        self.record_occupancy();
    }

    /// Finishes (or kills) a running job, releasing its nodes and
    /// re-rating the survivors.
    fn finish(&mut self, job_id: JobId, killed: bool) {
        // detlint: allow(D5, invariant stated in the expect message; violating it is a bug, not a recoverable state)
        let mut r = self.running.remove(&job_id).expect("job is running");
        self.running_view.remove(&job_id);
        r.advance_to(self.now);
        if !killed {
            debug_assert!(
                r.is_complete(),
                "{job_id} finished with {} work left",
                r.work_remaining()
            );
        }
        let alloc = {
            let _release_span = self
                .telemetry
                .map(|t| SimTelemetry::time(&t.release_seconds));
            self.cluster
                .release(job_id)
                // detlint: allow(D5, invariant stated in the expect message; violating it is a bug, not a recoverable state)
                .expect("job held an allocation")
        };
        if let Some(t) = self.telemetry {
            t.completions.inc();
            if killed {
                t.walltime_kills.inc();
            }
        }
        // Re-rate every survivor that shared a node with the leaver.
        self.rerate_affected(&alloc);
        self.completed_count += 1;
        if self.config.retain_detail {
            self.records.push(JobRecord {
                id: r.spec.id,
                app: r.spec.app,
                nodes: r.spec.nodes,
                submit: r.spec.submit,
                start: r.start,
                finish: self.now,
                runtime_exclusive: r.spec.runtime_exclusive,
                walltime_estimate: r.spec.walltime_estimate,
                shared_node_seconds: r.shared_node_seconds,
                killed,
                shared_alloc: r.mode == ShareMode::Shared,
                restarts: self.attempts.get(&r.spec.id).copied().unwrap_or(0),
                salvaged_work: self
                    .salvaged_at_start
                    .get(&r.spec.id)
                    .copied()
                    .unwrap_or(0.0),
                user: r.spec.user,
            });
        }
        self.trace_ev(TraceEvent::Finished {
            time: self.now,
            job: job_id,
            killed,
        });
        self.record_occupancy();
    }

    /// Re-rates every distinct job still resident on the nodes a released
    /// allocation covered. First-encounter lane order matches the old
    /// per-node `occupants()` walk; the scratch buffer makes the dedup
    /// allocation-free across calls.
    fn rerate_affected(&mut self, alloc: &Allocation) {
        let mut affected = std::mem::take(&mut self.affected_buf);
        affected.clear();
        for p in &alloc.placements {
            for occupant in self
                .cluster
                .node(p.node)
                // detlint: allow(D5, invariant stated in the expect message; violating it is a bug, not a recoverable state)
                .expect("node exists")
                .lane_owners()
            {
                if !affected.contains(&occupant) {
                    affected.push(occupant);
                }
            }
        }
        for &co in &affected {
            self.rerate_job(co);
        }
        self.affected_buf = affected;
    }

    /// Advances and re-rates one running job after an occupancy change on
    /// its nodes, scheduling a fresh completion event.
    fn rerate_job(&mut self, job_id: JobId) {
        // detlint: allow(D5, invariant stated in the expect message; violating it is a bug, not a recoverable state)
        let mut r = self.running.remove(&job_id).expect("job is running");
        r.advance_to(self.now);
        {
            let running_tbl = &self.running;
            r.rerate_with(&self.cluster, self.truth, |co| running_tbl[&co].spec.app);
        }
        r.generation = self.next_gen();
        self.events.push(
            r.eta(self.now),
            Event::Completion {
                job: job_id,
                generation: r.generation,
            },
        );
        self.running.insert(job_id, r);
    }

    /// A node fails: every resident job is requeued (its progress lost),
    /// the node goes down, and a repair is scheduled.
    fn fail_node(&mut self, node: NodeId) {
        let Some(n) = self.cluster.node(node) else {
            panic!("failure event for unknown {node}");
        };
        if n.admin_state() == AdminState::Down {
            return; // already down (e.g. repair pending)
        }
        for victim in n.occupants() {
            self.requeue(victim, node);
        }
        // detlint: allow(D5, invariant stated in the expect message; violating it is a bug, not a recoverable state)
        self.cluster.set_down(node).expect("node emptied above");
        self.trace_ev(TraceEvent::NodeDown {
            time: self.now,
            node,
            cause: DownCause::Failed,
        });
        let repair = self
            .config
            .failures
            .as_ref()
            // detlint: allow(D5, invariant stated in the expect message; violating it is a bug, not a recoverable state)
            .expect("failure event implies a failure model")
            .repair_time;
        self.events.push(self.now + repair, Event::NodeRepair(node));
        self.record_occupancy();
    }

    /// Evicts a running job (its node `failed`) and puts it back in the
    /// queue (submission order preserved); all progress is lost — no
    /// checkpointing.
    fn requeue(&mut self, job_id: JobId, failed: NodeId) {
        if let Some(t) = self.telemetry {
            t.requeues.inc();
            nodeshare_obs::warn!(
                "engine",
                "job requeued by node failure";
                job = job_id,
                node = failed
            );
        }
        self.trace_ev(TraceEvent::Requeued {
            time: self.now,
            job: job_id,
            node: failed,
        });
        // detlint: allow(D5, invariant stated in the expect message; violating it is a bug, not a recoverable state)
        let mut r = self.running.remove(&job_id).expect("victim is running");
        self.running_view.remove(&job_id);
        r.advance_to(self.now); // keeps shared-time accounting exact
                                // detlint: allow(D5, invariant stated in the expect message; violating it is a bug, not a recoverable state)
        let alloc = self.cluster.release(job_id).expect("victim held nodes");
        self.rerate_affected(&alloc);
        *self.attempts.entry(job_id).or_insert(0) += 1;
        if let Some(interval) = self.config.checkpoint_interval {
            debug_assert!(interval > 0.0, "checkpoint interval must be positive");
            let salvaged = (r.work_done / interval).floor() * interval;
            if salvaged > 0.0 {
                self.salvage.insert(job_id, salvaged);
            }
        }
        let spec = r.spec;
        let pos = self
            .queue
            .partition_point(|j| (j.submit, j.id) <= (spec.submit, spec.id));
        self.queue.insert(pos, spec);
        self.record_depth();
        self.record_occupancy();
    }

    /// Records the occupancy series after an allocation change. Reads the
    /// cluster's O(1) occupancy counters rather than walking every node;
    /// the counters are invariant-checked against the full walk in the
    /// cluster crate's tests.
    fn record_occupancy(&mut self) {
        let (busy_cores, shared_nodes) = self.cluster.occupancy_counts();
        let cores_per_node = self.config.cluster.node.cores() as f64;
        let busy = busy_cores as f64;
        let shared = shared_nodes as f64 * cores_per_node;
        self.busy_acc.record(self.now, busy);
        self.shared_acc.record(self.now, shared);
        if self.config.retain_detail {
            self.busy_cores.record(self.now, busy);
            self.shared_cores.record(self.now, shared);
        }
        self.trace_ev(TraceEvent::Occupancy {
            time: self.now,
            busy_cores,
            shared_nodes,
        });
    }
}

/// Convenience: number of idle nodes needed to start `spec` exclusively.
pub fn nodes_needed(spec: &JobSpec) -> usize {
    spec.nodes as usize
}

/// Picks the first `k` idle nodes of a cluster (lowest ids), or `None`
/// when fewer are idle. The canonical node-selection helper shared by the
/// baseline policies.
pub fn first_idle_nodes(cluster: &Cluster, k: usize) -> Option<Vec<NodeId>> {
    let picked: Vec<NodeId> = cluster.idle_nodes().take(k).collect();
    (picked.len() == k).then_some(picked)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodeshare_cluster::NodeSpec;
    use nodeshare_perf::{AppCatalog, ContentionModel};

    /// Starts the queue head exclusively whenever enough idle nodes exist.
    struct Fcfs;
    impl Scheduler for Fcfs {
        fn name(&self) -> &'static str {
            "test-fcfs"
        }
        fn schedule(&mut self, ctx: &SchedContext<'_>) -> Vec<Decision> {
            let Some(head) = ctx.queue.first() else {
                return vec![];
            };
            match first_idle_nodes(ctx.cluster, head.nodes as usize) {
                Some(nodes) => vec![Decision::StartExclusive {
                    job: head.id,
                    nodes,
                }],
                None => vec![],
            }
        }
    }

    fn spec(id: u64, submit: f64, nodes: u32, runtime: f64) -> JobSpec {
        JobSpec {
            malleable: Default::default(),
            id: JobId(id),
            app: nodeshare_perf::AppId(0),
            nodes,
            submit,
            runtime_exclusive: runtime,
            walltime_estimate: runtime * 2.0,
            mem_per_node_mib: 0,
            share_eligible: true,
            user: 0,
        }
    }

    fn matrix() -> CoRunTruth {
        CoRunTruth::build(&AppCatalog::trinity(), &ContentionModel::calibrated())
    }

    fn config(nodes: u32) -> SimConfig {
        SimConfig::new(ClusterSpec::new(nodes, NodeSpec::tiny()))
    }

    #[test]
    fn single_job_runs_at_exclusive_speed() {
        let w = Workload::new(vec![spec(0, 10.0, 2, 100.0)]).unwrap();
        let m = matrix();
        let out = run(&w, &m, &mut Fcfs, &config(4));
        assert!(out.complete());
        assert_eq!(out.records.len(), 1);
        let r = &out.records[0];
        assert_eq!(r.start, 10.0);
        assert_eq!(r.finish, 110.0);
        assert!(!r.killed);
        assert_eq!(r.shared_node_seconds, 0.0);
        // 2 nodes × 4 cores × 100 s busy.
        assert!((out.busy_core_seconds - 800.0).abs() < 1e-9);
        assert_eq!(out.shared_core_seconds, 0.0);
    }

    #[test]
    fn fcfs_serializes_conflicting_jobs() {
        let w = Workload::new(vec![spec(0, 0.0, 3, 100.0), spec(1, 1.0, 3, 100.0)]).unwrap();
        let m = matrix();
        let out = run(&w, &m, &mut Fcfs, &config(4));
        assert!(out.complete());
        let r1 = &out.records[1];
        assert_eq!(r1.start, 100.0, "second job waits for the first");
        assert_eq!(r1.finish, 200.0);
    }

    #[test]
    fn walltime_violation_kills() {
        let mut j = spec(0, 0.0, 1, 100.0);
        j.walltime_estimate = 50.0; // lies: true runtime 100
        let w = Workload::new(vec![j]).unwrap();
        let m = matrix();
        let out = run(&w, &m, &mut Fcfs, &config(4));
        let r = &out.records[0];
        assert!(r.killed);
        assert_eq!(r.finish, 50.0);
    }

    #[test]
    fn never_scheduling_leaves_jobs_unscheduled() {
        struct Never;
        impl Scheduler for Never {
            fn name(&self) -> &'static str {
                "never"
            }
            fn schedule(&mut self, _: &SchedContext<'_>) -> Vec<Decision> {
                vec![]
            }
        }
        let w = Workload::new(vec![spec(0, 0.0, 1, 10.0)]).unwrap();
        let m = matrix();
        let out = run(&w, &m, &mut Never, &config(2));
        assert!(!out.complete());
        assert_eq!(out.unscheduled, vec![JobId(0)]);
        assert!(out.records.is_empty());
    }

    #[test]
    #[should_panic(expected = "not queued")]
    fn bad_decision_panics() {
        struct Bad;
        impl Scheduler for Bad {
            fn name(&self) -> &'static str {
                "bad"
            }
            fn schedule(&mut self, _: &SchedContext<'_>) -> Vec<Decision> {
                vec![Decision::StartExclusive {
                    job: JobId(99),
                    nodes: vec![NodeId(0)],
                }]
            }
        }
        let w = Workload::new(vec![spec(0, 0.0, 1, 10.0)]).unwrap();
        let m = matrix();
        run(&w, &m, &mut Bad, &config(2));
    }

    /// Shares everything pairwise: starts the head shared on the first
    /// partial node when possible, else on an idle node.
    struct GreedyShare;
    impl Scheduler for GreedyShare {
        fn name(&self) -> &'static str {
            "greedy-share"
        }
        fn schedule(&mut self, ctx: &SchedContext<'_>) -> Vec<Decision> {
            let Some(head) = ctx.queue.first() else {
                return vec![];
            };
            let k = head.nodes as usize;
            let mut nodes: Vec<NodeId> = ctx.cluster.partial_nodes().take(k).collect();
            if nodes.len() < k {
                nodes.extend(ctx.cluster.idle_nodes().take(k - nodes.len()));
            }
            if nodes.len() == k {
                vec![Decision::StartShared {
                    job: head.id,
                    nodes,
                }]
            } else {
                vec![]
            }
        }
    }

    #[test]
    fn sharing_dilates_both_jobs_per_the_matrix() {
        let catalog = AppCatalog::trinity();
        let m = CoRunTruth::build(&catalog, &ContentionModel::calibrated());
        let fe = catalog.by_name("miniFE").unwrap().id;
        let mut a = spec(0, 0.0, 1, 100.0);
        let mut b = spec(1, 0.0, 1, 100.0);
        a.app = fe;
        b.app = fe;
        a.walltime_estimate = 10_000.0;
        b.walltime_estimate = 10_000.0;
        let w = Workload::new(vec![a, b]).unwrap();
        let out = run(&w, &m, &mut GreedyShare, &config(1));
        assert!(out.complete());
        let rate = m.pair_matrix().rate(fe, fe);
        let expected_finish = 100.0 / rate;
        for r in &out.records {
            assert!(
                (r.finish - expected_finish).abs() < 1e-6,
                "finish {} vs expected {expected_finish}",
                r.finish
            );
            assert!((r.dilation() - 1.0 / rate).abs() < 1e-9);
            assert!(r.shared_alloc);
            // Both co-resident the whole time.
            assert!((r.shared_node_seconds - expected_finish).abs() < 1e-6);
        }
        // Busy = one node busy for the whole run.
        assert!((out.busy_core_seconds - expected_finish * 4.0).abs() < 1e-6);
        assert!((out.shared_core_seconds - expected_finish * 4.0).abs() < 1e-6);
    }

    #[test]
    fn corunner_speeds_up_after_partner_leaves() {
        // Job 0: 100 s of work; job 1: 50 s. They share one node; when job
        // 1 finishes, job 0 returns to full speed.
        let catalog = AppCatalog::trinity();
        let m = CoRunTruth::build(&catalog, &ContentionModel::calibrated());
        let fe = catalog.by_name("miniFE").unwrap().id;
        let rate = m.pair_matrix().rate(fe, fe);
        let mut a = spec(0, 0.0, 1, 100.0);
        let mut b = spec(1, 0.0, 1, 50.0);
        a.app = fe;
        b.app = fe;
        a.walltime_estimate = 10_000.0;
        b.walltime_estimate = 10_000.0;
        let w = Workload::new(vec![a, b]).unwrap();
        let out = run(&w, &m, &mut GreedyShare, &config(1));
        let t1 = 50.0 / rate; // job 1 finishes
        let r0 = &out.records[0];
        // Job 0 did t1·rate work by t1, then the rest at rate 1.
        let expected_finish = t1 + (100.0 - t1 * rate);
        assert!(
            (r0.finish - expected_finish).abs() < 1e-6,
            "finish {} vs {expected_finish}",
            r0.finish
        );
        assert!((r0.shared_node_seconds - t1).abs() < 1e-6);
    }

    #[test]
    fn deterministic_outcomes() {
        let catalog = AppCatalog::trinity();
        let m = CoRunTruth::build(&catalog, &ContentionModel::calibrated());
        let spec_wl = nodeshare_workload::WorkloadSpec {
            n_jobs: 60,
            ..nodeshare_workload::WorkloadSpec::evaluation(&catalog, 5)
        };
        let w = spec_wl.generate(&catalog);
        let cfg = SimConfig::new(ClusterSpec::new(16, NodeSpec::tiny()));
        let a = run(&w, &m, &mut Fcfs, &cfg);
        let b = run(&w, &m, &mut Fcfs, &cfg);
        assert_eq!(a.records, b.records);
        assert_eq!(a.busy_core_seconds, b.busy_core_seconds);
    }
}

#[cfg(test)]
mod tick_tests {
    use super::*;
    use crate::view::{Decision, SchedContext, Scheduler};
    use nodeshare_cluster::NodeSpec;
    use nodeshare_perf::{AppCatalog, ContentionModel};
    use nodeshare_workload::JobSpec;

    /// A lazy policy that only acts on the periodic tick, never on
    /// arrival/completion events — models schedulers that batch work.
    struct TickOnly {
        armed: bool,
    }
    impl Scheduler for TickOnly {
        fn name(&self) -> &'static str {
            "tick-only"
        }
        fn schedule(&mut self, ctx: &SchedContext<'_>) -> Vec<Decision> {
            // The engine cannot tell the policy *why* it was invoked, so
            // the test policy skips every other invocation; only the
            // periodic tick guarantees it eventually runs again without
            // any event arriving.
            self.armed = !self.armed;
            if !self.armed {
                return vec![];
            }
            let Some(head) = ctx.queue.first() else {
                return vec![];
            };
            match crate::sim::first_idle_nodes(ctx.cluster, head.nodes as usize) {
                Some(nodes) => vec![Decision::StartExclusive {
                    job: head.id,
                    nodes,
                }],
                None => vec![],
            }
        }
    }

    #[test]
    fn periodic_tick_rescues_lazy_policies() {
        let catalog = AppCatalog::trinity();
        let truth = CoRunTruth::build(&catalog, &ContentionModel::calibrated());
        let mut config = SimConfig::new(ClusterSpec::new(2, NodeSpec::tiny()));
        config.sched_tick = Some(30.0);
        let jobs: Vec<JobSpec> = (0..4)
            .map(|i| JobSpec {
                malleable: Default::default(),
                id: JobId(i),
                app: nodeshare_perf::AppId(0),
                nodes: 2,
                submit: 0.0,
                runtime_exclusive: 50.0,
                walltime_estimate: 100.0,
                mem_per_node_mib: 0,
                share_eligible: false,
                user: 0,
            })
            .collect();
        let w = Workload::new(jobs).unwrap();
        let out = run(&w, &truth, &mut TickOnly { armed: false }, &config);
        assert!(out.complete(), "tick must eventually start every job");
        assert_eq!(out.records.len(), 4);
    }
}
