//! Runtime telemetry for simulation runs: pre-registered instruments over
//! a [`MetricsRegistry`], plus a JSONL time-series sampler driven by
//! simulation time.
//!
//! This is the *runtime* observability companion to the correctness layer
//! in [`crate::trace`]/[`crate::audit`]: where the decision trace records
//! *what* the scheduler did for later replay, telemetry exposes *how* the
//! run is behaving while it happens — queue depth, occupancy, backfill
//! scan cost, pairing hit rate, event latencies — in two exportable
//! forms: a Prometheus text exposition and a JSONL stream of periodic
//! [`TelemetrySample`]s.
//!
//! Telemetry is strictly opt-in: [`crate::sim::run`] carries no telemetry
//! and pays only an `Option` check per instrumentation site, so the
//! benchmark hot path is unchanged when it is off.

use nodeshare_cluster::Cluster;
use nodeshare_obs::{exponential_buckets, Counter, Gauge, Histogram, MetricsRegistry, SpanTimer};
use nodeshare_workload::Seconds;
use std::sync::Mutex;

/// Scheduler-side instruments, exposed to policies through
/// [`crate::SchedContext::telemetry`]. All handles are cheap atomic
/// cells; policies update them directly on their hot paths.
#[derive(Debug)]
pub struct SchedTelemetry {
    /// Start decisions returned by the policy (counted by the engine, so
    /// every policy is covered).
    pub decisions: Counter,
    /// Queue-head starts (the job that was first in line).
    pub head_started: Counter,
    /// Backfill candidates examined behind the head.
    pub backfill_scanned: Counter,
    /// Backfill candidates actually started.
    pub backfill_started: Counter,
    /// Candidates examined per backfill pass (distribution).
    pub backfill_scan_depth: Histogram,
    /// Pairing-compatibility queries (candidate × resident-stack checks).
    pub pairing_queries: Counter,
    /// Pairing queries that accepted the candidate node.
    pub pairing_hits: Counter,
    /// Completed-job records digested by learning wrappers.
    pub learning_updates: Counter,
    /// Wall-clock time of one placement scan (the Planner/backfill pass
    /// that searches the queue for startable jobs and holes).
    pub phase_placement_seconds: Histogram,
    /// Wall-clock time of one Conservative timeline-maintenance pass
    /// (rebuilding or splicing the reservation profile).
    pub phase_timeline_seconds: Histogram,
    /// Wall-clock time of one pairing-compatibility lookup (candidate
    /// vs. resident stack).
    pub phase_pairing_seconds: Histogram,
}

impl SchedTelemetry {
    fn new(registry: &MetricsRegistry) -> Self {
        let phase_latency = exponential_buckets(1e-7, 10.0, 8); // 100 ns .. 10 s
        let phase = |name: &str| {
            registry.histogram_with(
                "sched_phase_duration_seconds",
                "Wall-clock time spent in one scheduler hot phase.",
                &phase_latency,
                &[("phase", name)],
            )
        };
        SchedTelemetry {
            phase_placement_seconds: phase("placement-scan"),
            phase_timeline_seconds: phase("timeline-maintenance"),
            phase_pairing_seconds: phase("pairing-lookup"),
            decisions: registry.counter(
                "sched_decisions_total",
                "Start decisions returned by the scheduling policy.",
            ),
            head_started: registry
                .counter("sched_head_started_total", "Starts of the queue-head job."),
            backfill_scanned: registry.counter(
                "sched_backfill_candidates_scanned_total",
                "Backfill candidates examined behind the queue head.",
            ),
            backfill_started: registry.counter(
                "sched_backfill_started_total",
                "Backfill candidates started ahead of the queue head.",
            ),
            backfill_scan_depth: registry.histogram(
                "sched_backfill_scan_depth",
                "Candidates examined per backfill pass.",
                &[0.0, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 250.0, 1000.0],
            ),
            pairing_queries: registry.counter(
                "sched_pairing_queries_total",
                "Pairing-compatibility queries (candidate vs. resident stack).",
            ),
            pairing_hits: registry.counter(
                "sched_pairing_hits_total",
                "Pairing queries that accepted the candidate placement.",
            ),
            learning_updates: registry.counter(
                "sched_learning_updates_total",
                "Completed-job records digested by estimate-learning wrappers.",
            ),
        }
    }

    /// Times one placement scan (RAII: the returned timer observes
    /// elapsed seconds into the placement-scan phase histogram when
    /// dropped). Policies call this only when a telemetry sink is
    /// attached, so the untelemetered hot path stays unchanged.
    pub fn time_placement(&self) -> SpanTimer {
        SpanTimer::new(&self.phase_placement_seconds)
    }

    /// Times one timeline-maintenance pass (RAII, see
    /// [`SchedTelemetry::time_placement`]).
    pub fn time_timeline(&self) -> SpanTimer {
        SpanTimer::new(&self.phase_timeline_seconds)
    }

    /// Times one pairing-compatibility lookup (RAII, see
    /// [`SchedTelemetry::time_placement`]).
    pub fn time_pairing(&self) -> SpanTimer {
        SpanTimer::new(&self.phase_pairing_seconds)
    }

    /// Pairing hit rate so far (hits / queries; 0 when no queries).
    pub fn pairing_hit_rate(&self) -> f64 {
        let q = self.pairing_queries.get();
        if q == 0 {
            0.0
        } else {
            self.pairing_hits.get() as f64 / q as f64
        }
    }
}

/// One periodic JSONL sample of run state, taken every
/// [`SimTelemetry::sample_interval`] seconds of *simulation* time.
///
/// Counts are cumulative where they are counters (`starts_*`,
/// `completed`, `decisions`) and instantaneous where they are gauges
/// (queue/node state). `nodes_occupied + nodes_idle + nodes_unavailable`
/// always equals `nodes_total`, and `busy_cores` equals
/// `nodes_occupied × cores_per_node` — the same accounting as
/// [`Cluster::occupancy_snapshot`].
#[derive(Clone, Debug, PartialEq)]
pub struct TelemetrySample {
    /// Simulation time of the sample.
    pub t: Seconds,
    /// Jobs waiting in the queue.
    pub queue_depth: u64,
    /// Jobs currently running.
    pub running: u64,
    /// Jobs completed so far (including walltime kills).
    pub completed: u64,
    /// Pending events in the engine's event queue.
    pub event_queue: u64,
    /// Total nodes in the cluster.
    pub nodes_total: u64,
    /// Nodes hosting at least one job.
    pub nodes_occupied: u64,
    /// Nodes hosting two or more jobs (co-allocation in effect).
    pub nodes_shared: u64,
    /// Up-and-empty nodes.
    pub nodes_idle: u64,
    /// Down or drained-and-empty nodes.
    pub nodes_unavailable: u64,
    /// Physical cores busy.
    pub busy_cores: u64,
    /// `busy_cores / total_cores`, in `[0, 1]`.
    pub utilization: f64,
    /// Cumulative start decisions.
    pub decisions: u64,
    /// Cumulative exclusive-mode starts.
    pub starts_exclusive: u64,
    /// Cumulative shared-mode starts.
    pub starts_shared: u64,
    /// Cumulative backfill starts.
    pub backfill_started: u64,
}

impl TelemetrySample {
    /// Renders the sample as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"t\":{},\"queue_depth\":{},\"running\":{},\"completed\":{},",
                "\"event_queue\":{},\"nodes_total\":{},\"nodes_occupied\":{},",
                "\"nodes_shared\":{},\"nodes_idle\":{},\"nodes_unavailable\":{},",
                "\"busy_cores\":{},\"utilization\":{},\"decisions\":{},",
                "\"starts_exclusive\":{},\"starts_shared\":{},\"backfill_started\":{}}}"
            ),
            fmt_f64(self.t),
            self.queue_depth,
            self.running,
            self.completed,
            self.event_queue,
            self.nodes_total,
            self.nodes_occupied,
            self.nodes_shared,
            self.nodes_idle,
            self.nodes_unavailable,
            self.busy_cores,
            fmt_f64(self.utilization),
            self.decisions,
            self.starts_exclusive,
            self.starts_shared,
            self.backfill_started,
        )
    }

    /// Parses one JSONL line produced by [`TelemetrySample::to_json`].
    /// Returns `None` for malformed lines or missing fields.
    pub fn parse(line: &str) -> Option<TelemetrySample> {
        let body = line.trim().strip_prefix('{')?.strip_suffix('}')?;
        let get = |key: &str| -> Option<f64> {
            let needle = format!("\"{key}\":");
            let start = body.find(&needle)? + needle.len();
            let rest = &body[start..];
            let end = rest.find(',').unwrap_or(rest.len());
            rest[..end].trim().parse().ok()
        };
        Some(TelemetrySample {
            t: get("t")?,
            queue_depth: get("queue_depth")? as u64,
            running: get("running")? as u64,
            completed: get("completed")? as u64,
            event_queue: get("event_queue")? as u64,
            nodes_total: get("nodes_total")? as u64,
            nodes_occupied: get("nodes_occupied")? as u64,
            nodes_shared: get("nodes_shared")? as u64,
            nodes_idle: get("nodes_idle")? as u64,
            nodes_unavailable: get("nodes_unavailable")? as u64,
            busy_cores: get("busy_cores")? as u64,
            utilization: get("utilization")?,
            decisions: get("decisions")? as u64,
            starts_exclusive: get("starts_exclusive")? as u64,
            starts_shared: get("starts_shared")? as u64,
            backfill_started: get("backfill_started")? as u64,
        })
    }
}

/// JSON-safe `f64` rendering: finite values via `Display`, non-finite
/// clamped to 0 (they cannot occur in practice; JSON has no Inf/NaN).
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// All run-scoped telemetry: the registry, the pre-registered engine
/// instruments, scheduler instruments, and the JSONL sample buffer.
///
/// Pass one to [`crate::sim::run_with_telemetry`]; afterwards export with
/// [`SimTelemetry::prometheus`] and [`SimTelemetry::jsonl`]. A
/// `SimTelemetry` is single-run state — reusing one across runs
/// accumulates counters (which is occasionally what you want for
/// fleet-style aggregation, but samples interleave).
#[derive(Debug)]
pub struct SimTelemetry {
    /// The backing registry (add your own instruments freely).
    pub registry: MetricsRegistry,
    /// Simulation-time seconds between JSONL samples.
    pub sample_interval: Seconds,
    /// Scheduler-side instruments (shared with policies via the context).
    pub sched: SchedTelemetry,
    // detlint: allow(D3, sampler buffer shared with orchestrator workers; protects diagnostics, not outcomes)
    samples: Mutex<Vec<TelemetrySample>>,

    pub(crate) events_total: Counter,
    pub(crate) event_seconds: Histogram,
    pub(crate) invoke_seconds: Histogram,
    pub(crate) alloc_seconds: Histogram,
    pub(crate) release_seconds: Histogram,
    pub(crate) starts_exclusive: Counter,
    pub(crate) starts_shared: Counter,
    pub(crate) reshapes: Counter,
    pub(crate) completions: Counter,
    pub(crate) walltime_kills: Counter,
    pub(crate) requeues: Counter,
    pub(crate) rejected: Counter,
    pub(crate) queue_depth: Gauge,
    pub(crate) running_jobs: Gauge,
    pub(crate) event_queue_len: Gauge,
    pub(crate) nodes_occupied: Gauge,
    pub(crate) nodes_shared: Gauge,
    pub(crate) nodes_idle: Gauge,
    pub(crate) busy_cores: Gauge,
    pub(crate) utilization: Gauge,
    pub(crate) cluster_allocs_exclusive: Gauge,
    pub(crate) cluster_allocs_shared: Gauge,
    pub(crate) cluster_releases: Gauge,
    pub(crate) cluster_failed_allocs: Gauge,
}

impl SimTelemetry {
    /// Builds a telemetry context sampling every `sample_interval`
    /// seconds of simulation time.
    ///
    /// # Panics
    /// Panics when `sample_interval` is not positive.
    pub fn new(sample_interval: Seconds) -> Self {
        assert!(
            sample_interval > 0.0,
            "sample interval must be positive, got {sample_interval}"
        );
        let registry = MetricsRegistry::new();
        let latency = exponential_buckets(1e-7, 10.0, 8); // 100 ns .. 10 s
        let sched = SchedTelemetry::new(&registry);
        SimTelemetry {
            sched,
            sample_interval,
            // detlint: allow(D3, sampler buffer construction, see the field note)
            samples: Mutex::new(Vec::new()),
            events_total: registry.counter(
                "sim_events_processed_total",
                "Discrete events processed by the engine.",
            ),
            event_seconds: registry.histogram(
                "sim_event_duration_seconds",
                "Wall-clock time to process one simulation event.",
                &latency,
            ),
            invoke_seconds: registry.histogram(
                "sched_invoke_duration_seconds",
                "Wall-clock time of one scheduler invocation.",
                &latency,
            ),
            alloc_seconds: registry.histogram(
                "cluster_alloc_duration_seconds",
                "Wall-clock time of one cluster allocation.",
                &latency,
            ),
            release_seconds: registry.histogram(
                "cluster_release_duration_seconds",
                "Wall-clock time of one cluster release.",
                &latency,
            ),
            starts_exclusive: registry.counter_with(
                "sim_jobs_started_total",
                "Jobs started, by allocation mode.",
                &[("mode", "exclusive")],
            ),
            starts_shared: registry.counter_with(
                "sim_jobs_started_total",
                "Jobs started, by allocation mode.",
                &[("mode", "shared")],
            ),
            reshapes: registry.counter(
                "sim_jobs_reshaped_total",
                "Reshape decisions applied to running malleable jobs.",
            ),
            completions: registry.counter(
                "sim_jobs_completed_total",
                "Jobs that finished (including walltime kills).",
            ),
            walltime_kills: registry.counter(
                "sim_jobs_killed_walltime_total",
                "Jobs killed at their walltime bound.",
            ),
            requeues: registry.counter(
                "sim_jobs_requeued_total",
                "Jobs evicted by node failures and requeued.",
            ),
            rejected: registry.counter(
                "sim_jobs_rejected_total",
                "Jobs rejected at submission as unsatisfiable.",
            ),
            queue_depth: registry.gauge("sim_queue_depth", "Jobs waiting in the queue."),
            running_jobs: registry.gauge("sim_running_jobs", "Jobs currently running."),
            event_queue_len: registry.gauge(
                "sim_event_queue_length",
                "Pending events in the engine's event queue.",
            ),
            nodes_occupied: registry.gauge("sim_nodes_occupied", "Nodes hosting at least one job."),
            nodes_shared: registry.gauge(
                "sim_nodes_shared",
                "Nodes hosting two or more jobs (co-allocated).",
            ),
            nodes_idle: registry.gauge("sim_nodes_idle", "Up-and-empty nodes."),
            busy_cores: registry.gauge("sim_busy_cores", "Physical cores busy."),
            utilization: registry.gauge("sim_core_utilization", "Fraction of physical cores busy."),
            cluster_allocs_exclusive: registry.gauge(
                "cluster_allocs_exclusive",
                "Exclusive allocations performed by the cluster.",
            ),
            cluster_allocs_shared: registry.gauge(
                "cluster_allocs_shared",
                "Shared (lane) allocations performed by the cluster.",
            ),
            cluster_releases: registry
                .gauge("cluster_releases", "Allocations released by the cluster."),
            cluster_failed_allocs: registry.gauge(
                "cluster_failed_allocs",
                "Allocation requests the cluster rejected.",
            ),
            registry,
        }
    }

    /// Registers the strategy-name info gauge (`sim_strategy_info`), the
    /// conventional way to label a scrape with a discrete identity.
    pub(crate) fn note_strategy(&self, name: &str) {
        self.registry
            .gauge_with(
                "sim_strategy_info",
                "Scheduling strategy of this run (value is always 1).",
                &[("strategy", name)],
            )
            .set(1.0);
    }

    /// Records one periodic sample (engine-internal).
    pub(crate) fn record_sample(
        &self,
        t: Seconds,
        queue_depth: usize,
        running: usize,
        completed: usize,
        event_queue: usize,
        cluster: &Cluster,
    ) {
        let snap = cluster.occupancy_snapshot();
        let total = cluster.node_count() as u64;
        let occupied = snap.per_node.len() as u64;
        let idle = cluster.idle_count() as u64;
        let stats = cluster.alloc_stats();
        let sample = TelemetrySample {
            t,
            queue_depth: queue_depth as u64,
            running: running as u64,
            completed: completed as u64,
            event_queue: event_queue as u64,
            nodes_total: total,
            nodes_occupied: occupied,
            nodes_shared: snap.shared_nodes as u64,
            nodes_idle: idle,
            nodes_unavailable: total - occupied - idle,
            busy_cores: snap.busy_cores,
            utilization: cluster.core_utilization(),
            decisions: self.sched.decisions.get(),
            starts_exclusive: self.starts_exclusive.get(),
            starts_shared: self.starts_shared.get(),
            backfill_started: self.sched.backfill_started.get(),
        };
        // Keep the gauges in lock-step with the sample stream so a
        // Prometheus scrape and the JSONL series never disagree.
        self.queue_depth.set(sample.queue_depth as f64);
        self.running_jobs.set(sample.running as f64);
        self.event_queue_len.set(sample.event_queue as f64);
        self.nodes_occupied.set(occupied as f64);
        self.nodes_shared.set(sample.nodes_shared as f64);
        self.nodes_idle.set(idle as f64);
        self.busy_cores.set(sample.busy_cores as f64);
        self.utilization.set(sample.utilization);
        self.cluster_allocs_exclusive
            .set(stats.exclusive_allocs as f64);
        self.cluster_allocs_shared.set(stats.shared_allocs as f64);
        self.cluster_releases.set(stats.releases as f64);
        self.cluster_failed_allocs.set(stats.failed_allocs as f64);
        // detlint: allow(D5, invariant stated in the expect message; violating it is a bug, not a recoverable state)
        let mut samples = self.samples.lock().expect("samples poisoned");
        // The closing sample of a run may land on the same instant as the
        // last periodic one; the newer (post-event) state wins, keeping
        // the series strictly increasing in time.
        if samples.last().is_some_and(|s| s.t == sample.t) {
            samples.pop();
        }
        samples.push(sample);
    }

    /// Times a scope into one of the engine latency histograms.
    pub(crate) fn time(hist: &Histogram) -> SpanTimer {
        SpanTimer::new(hist)
    }

    /// The samples collected so far.
    pub fn samples(&self) -> Vec<TelemetrySample> {
        // detlint: allow(D5, invariant stated in the expect message; violating it is a bug, not a recoverable state)
        self.samples.lock().expect("samples poisoned").clone()
    }

    /// The sample stream as JSONL (one object per line, trailing newline
    /// when non-empty).
    pub fn jsonl(&self) -> String {
        // detlint: allow(D5, invariant stated in the expect message; violating it is a bug, not a recoverable state)
        let samples = self.samples.lock().expect("samples poisoned");
        let mut out = String::new();
        for s in samples.iter() {
            out.push_str(&s.to_json());
            out.push('\n');
        }
        out
    }

    /// The registry rendered in Prometheus text-exposition format.
    pub fn prometheus(&self) -> String {
        nodeshare_obs::render_prometheus(&self.registry)
    }

    /// A short human-readable run summary: decision counts, pairing hit
    /// rate, and the backfill scan-depth distribution rendered through
    /// the `nodeshare-metrics` histogram (the two histogram types
    /// interconvert, see `nodeshare_metrics::Histogram::from_obs`).
    pub fn describe(&self) -> String {
        let scan = nodeshare_metrics::Histogram::from_obs(&self.sched.backfill_scan_depth);
        format!(
            "telemetry: {} samples @ {:.0}s | decisions {} (head {}, backfill {}) | \
             pairing hit rate {:.1}% ({}/{}) | events {}\n\
             backfill scan depth per pass:\n{}",
            // detlint: allow(D5, invariant stated in the expect message; violating it is a bug, not a recoverable state)
            self.samples.lock().expect("samples poisoned").len(),
            self.sample_interval,
            self.sched.decisions.get(),
            self.sched.head_started.get(),
            self.sched.backfill_started.get(),
            100.0 * self.sched.pairing_hit_rate(),
            self.sched.pairing_hits.get(),
            self.sched.pairing_queries.get(),
            self.events_total.get(),
            scan.render(40),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_json_roundtrips() {
        let s = TelemetrySample {
            t: 1234.5,
            queue_depth: 7,
            running: 3,
            completed: 90,
            event_queue: 15,
            nodes_total: 128,
            nodes_occupied: 100,
            nodes_shared: 20,
            nodes_idle: 26,
            nodes_unavailable: 2,
            busy_cores: 3200,
            utilization: 0.78125,
            decisions: 93,
            starts_exclusive: 60,
            starts_shared: 33,
            backfill_started: 12,
        };
        let line = s.to_json();
        assert!(line.starts_with("{\"t\":1234.5,"));
        assert_eq!(TelemetrySample::parse(&line), Some(s));
        assert_eq!(TelemetrySample::parse("not json"), None);
        assert_eq!(TelemetrySample::parse("{\"t\":1}"), None);
    }

    #[test]
    fn telemetry_registers_core_families() {
        let t = SimTelemetry::new(60.0);
        let text = t.prometheus();
        for family in [
            "# TYPE sched_decisions_total counter",
            "# TYPE sched_backfill_scan_depth histogram",
            "# TYPE sim_queue_depth gauge",
            "# TYPE sim_nodes_occupied gauge",
            "# TYPE sim_jobs_started_total counter",
            "# TYPE sched_pairing_queries_total counter",
            "# TYPE sched_phase_duration_seconds histogram",
        ] {
            assert!(text.contains(family), "missing {family} in:\n{text}");
        }
    }

    #[test]
    fn pairing_hit_rate_handles_zero_queries() {
        let t = SimTelemetry::new(1.0);
        assert_eq!(t.sched.pairing_hit_rate(), 0.0);
        t.sched.pairing_queries.add(4);
        t.sched.pairing_hits.add(3);
        assert!((t.sched.pairing_hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_panics() {
        SimTelemetry::new(0.0);
    }
}
