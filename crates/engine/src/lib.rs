#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
//! # nodeshare-engine
//!
//! Deterministic discrete-event simulation of a batch system with
//! co-runner-dependent job progress:
//!
//! * [`events`] — `(time, band, sequence)`-ordered event queue with two
//!   interchangeable backends (bucketed calendar queue by default, binary
//!   heap for reference) proven to pop identically,
//! * [`progress`] — work-based running-job state: rates change when
//!   co-runners come and go; completion events are generation-stamped so
//!   stale ones are skipped,
//! * [`view`] — the [`Scheduler`] trait and the context policies see
//!   (estimates only — never true runtimes),
//! * [`sim`] — the driver ([`run`]) wiring workload + cluster + pair
//!   matrix + policy together; [`run_streamed`] feeds it from a chunked
//!   [`nodeshare_workload::JobSource`] so million-job campaigns keep only
//!   in-flight and queued jobs resident,
//! * [`outcome`] — [`SimOutcome`] with per-job records and integrated
//!   occupancy series,
//! * [`telemetry`] — runtime observability ([`SimTelemetry`]): metric
//!   instruments, scheduler perf counters, and a sim-time JSONL sampler,
//! * [`trace`] — structured [`DecisionTrace`] of every scheduler decision
//!   and allocation change,
//! * [`audit`] — the replay [`Auditor`] that re-derives cluster state from
//!   a trace and checks conservation laws against the outcome.
//!
//! The engine enforces the sharing mechanism's ground rules (only
//! share-eligible jobs may be co-allocated) and panics on inapplicable
//! policy decisions, so a policy bug fails loudly rather than skewing
//! results.

pub mod audit;
pub mod events;
pub mod faults;
pub mod outcome;
pub mod progress;
pub mod sim;
pub mod telemetry;
pub mod trace;
pub mod view;

pub use audit::{AuditSummary, Auditor, Violation};
pub use events::{Event, EventQueue, QueueBackend};
pub use faults::{FailureModel, MaintenanceWindow};
pub use outcome::SimOutcome;
pub use progress::RunningJob;
pub use sim::{
    first_idle_nodes, run, run_streamed, run_streamed_traced, run_streamed_traced_with_telemetry,
    run_streamed_with_telemetry, run_traced, run_traced_with_telemetry, run_with_telemetry,
    SimConfig,
};
pub use telemetry::{SchedTelemetry, SimTelemetry, TelemetrySample};
pub use trace::{DecisionTrace, DownCause, StartReason, TraceEvent};
pub use view::{Decision, RunningSummary, SchedContext, Scheduler};
