//! Property tests: the engine under random failure schedules still
//! completes every campaign, conserves per-job work, and stays
//! deterministic.

use nodeshare_cluster::{ClusterSpec, JobId, NodeSpec};
use nodeshare_engine::{
    first_idle_nodes, run, Decision, FailureModel, SchedContext, Scheduler, SimConfig,
};
use nodeshare_perf::{AppCatalog, AppId, CoRunTruth, ContentionModel};
use nodeshare_workload::{JobSpec, Workload};
use proptest::prelude::*;

struct Fcfs;
impl Scheduler for Fcfs {
    fn name(&self) -> &'static str {
        "fcfs"
    }
    fn schedule(&mut self, ctx: &SchedContext<'_>) -> Vec<Decision> {
        let Some(head) = ctx.queue.first() else {
            return vec![];
        };
        match first_idle_nodes(ctx.cluster, head.nodes as usize) {
            Some(nodes) => vec![Decision::StartExclusive {
                job: head.id,
                nodes,
            }],
            None => vec![],
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// With any failure seed/MTBF (and optional checkpointing), every job
    /// eventually completes its full work, records stay consistent, and
    /// reruns are identical.
    #[test]
    fn campaigns_survive_arbitrary_failure_schedules(
        fail_seed in 0u64..1_000,
        mtbf in 2_000.0f64..50_000.0,
        ckpt in prop::option::of(50.0f64..500.0),
        n_jobs in 3usize..12,
    ) {
        let catalog = AppCatalog::trinity();
        let truth = CoRunTruth::build(&catalog, &ContentionModel::calibrated());
        let jobs: Vec<JobSpec> = (0..n_jobs as u64)
            .map(|i| JobSpec {
                malleable: Default::default(),
                id: JobId(i),
                app: AppId((i % 8) as u8),
                nodes: 1 + (i % 3) as u32,
                submit: i as f64 * 50.0,
                runtime_exclusive: 400.0,
                walltime_estimate: 1_200.0,
                mem_per_node_mib: 0,
                share_eligible: false,
                user: 0,
            })
            .collect();
        let workload = Workload::new(jobs).unwrap();
        let mut config = SimConfig::new(ClusterSpec::new(4, NodeSpec::tiny()));
        config.failures = Some(FailureModel {
            mtbf_per_node: mtbf,
            repair_time: 300.0,
            seed: fail_seed,
        });
        config.failure_horizon = 200_000.0;
        config.checkpoint_interval = ckpt;

        let out = run(&workload, &truth, &mut Fcfs, &config);
        prop_assert!(out.complete(), "unscheduled {:?}", out.unscheduled);
        prop_assert_eq!(out.records.len(), n_jobs);
        for r in &out.records {
            r.validate().map_err(TestCaseError::fail)?;
            if !r.killed {
                // The final attempt ran for the un-salvaged remainder.
                let needed = r.runtime_exclusive - r.salvaged_work;
                prop_assert!(
                    r.run() >= needed - 1e-6,
                    "{}: ran {} of {}",
                    r.id, r.run(), needed
                );
                prop_assert!(r.salvaged_work < r.runtime_exclusive);
            }
            if ckpt.is_none() {
                prop_assert_eq!(r.salvaged_work, 0.0);
            }
        }
        let again = run(&workload, &truth, &mut Fcfs, &config);
        prop_assert_eq!(out.records, again.records);
    }

}

/// Checkpointing helps *on average*: a per-seed guarantee does not exist
/// (a job finishing earlier can wander into a failure window the plain
/// run missed), so this is a statistical comparison over many seeds.
#[test]
fn checkpointing_helps_on_average() {
    let catalog = AppCatalog::trinity();
    let truth = CoRunTruth::build(&catalog, &ContentionModel::calibrated());
    let jobs: Vec<JobSpec> = (0..6u64)
        .map(|i| JobSpec {
            malleable: Default::default(),
            id: JobId(i),
            app: AppId(0),
            nodes: 1,
            submit: 0.0,
            runtime_exclusive: 900.0,
            walltime_estimate: 2_000.0,
            mem_per_node_mib: 0,
            share_eligible: false,
            user: 0,
        })
        .collect();
    let workload = Workload::new(jobs).unwrap();
    let (mut plain_sum, mut ckpt_sum) = (0.0, 0.0);
    for fail_seed in 0..30u64 {
        let mut base = SimConfig::new(ClusterSpec::new(3, NodeSpec::tiny()));
        base.failures = Some(FailureModel {
            mtbf_per_node: 4_000.0,
            repair_time: 200.0,
            seed: fail_seed,
        });
        base.failure_horizon = 100_000.0;
        let plain = run(&workload, &truth, &mut Fcfs, &base);
        let mut ckpt_cfg = base.clone();
        ckpt_cfg.checkpoint_interval = Some(100.0);
        let ckpt = run(&workload, &truth, &mut Fcfs, &ckpt_cfg);
        assert!(plain.complete() && ckpt.complete());
        // end_time is dominated by post-campaign fault events (identical
        // in both configs); compare the actual campaign makespan.
        let last_finish = |o: &nodeshare_engine::SimOutcome| {
            o.records.iter().map(|r| r.finish).fold(0.0, f64::max)
        };
        plain_sum += last_finish(&plain);
        ckpt_sum += last_finish(&ckpt);
    }
    assert!(
        ckpt_sum < plain_sum,
        "checkpointing should shorten campaigns on average ({ckpt_sum} vs {plain_sum})"
    );
}
