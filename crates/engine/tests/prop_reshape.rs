//! Property tests for the reshape path: a scheduler issuing *arbitrary*
//! contract-respecting reshape schedules still passes the full replay
//! audit, stays deterministic, and keeps the incrementally-maintained
//! occupancy integral equal to a from-scratch rebuild of the trace.

use std::collections::BTreeMap;

use nodeshare_cluster::{ClusterSpec, JobId, NodeId, NodeSpec, ShareMode};
use nodeshare_engine::{
    first_idle_nodes, run_traced, Auditor, Decision, DecisionTrace, SchedContext, Scheduler,
    SimConfig, TraceEvent,
};
use nodeshare_perf::{AppCatalog, AppId, CoRunTruth, ContentionModel};
use nodeshare_workload::{JobSpec, Malleability, Workload};
use proptest::prelude::*;

/// FCFS starts plus pseudo-random reshapes: whenever nothing can start,
/// pick a running malleable job with a seeded xorshift and move it to a
/// random admissible width (shrinks drop the tail of its grant, grows
/// take the lowest-id idle nodes). A finite budget bounds the churn so
/// every campaign terminates.
struct ReshapingFcfs {
    rng: u64,
    budget: u32,
}

impl ReshapingFcfs {
    fn new(seed: u64, budget: u32) -> ReshapingFcfs {
        ReshapingFcfs {
            rng: seed | 1,
            budget,
        }
    }

    fn next(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }
}

impl Scheduler for ReshapingFcfs {
    fn name(&self) -> &'static str {
        "reshaping-fcfs"
    }

    fn schedule(&mut self, ctx: &SchedContext<'_>) -> Vec<Decision> {
        if let Some(head) = ctx.queue.first() {
            if let Some(nodes) = first_idle_nodes(ctx.cluster, head.nodes as usize) {
                return vec![Decision::StartExclusive {
                    job: head.id,
                    nodes,
                }];
            }
        }
        if self.budget == 0 {
            return vec![];
        }
        let candidates: Vec<_> = ctx
            .running
            .values()
            .filter(|r| r.mode == ShareMode::Exclusive && !r.malleable.is_rigid())
            .collect();
        if candidates.is_empty() {
            return vec![];
        }
        let pick = candidates[(self.next() as usize) % candidates.len()];
        let held: Vec<NodeId> = ctx
            .cluster
            .allocation(pick.job)
            .map(|a| a.nodes().collect())
            .unwrap_or_default();
        if held.len() != pick.nodes as usize {
            return vec![];
        }
        let mut idle: Vec<NodeId> = ctx.cluster.idle_nodes().collect();
        idle.sort_unstable();
        let lo = pick.malleable.min_nodes.max(1);
        let hi = pick.malleable.max_nodes.min(pick.nodes + idle.len() as u32);
        if lo == hi {
            return vec![]; // only the current width is representable
        }
        let mut target = lo + (self.next() % u64::from(hi - lo + 1)) as u32;
        if target == pick.nodes {
            // The contract requires a width change; nudge inside range.
            target = if target == hi { target - 1 } else { target + 1 };
        }
        let mut nodes = held;
        if target < pick.nodes {
            nodes.truncate(target as usize);
        } else {
            nodes.extend_from_slice(&idle[..(target - pick.nodes) as usize]);
        }
        self.budget -= 1;
        vec![Decision::Reshape {
            job: pick.job,
            nodes,
        }]
    }
}

/// A small mixed workload: every other job carries a non-rigid contract
/// spanning widths below and above its request.
fn rig(n_jobs: usize, wseed: u64) -> (Workload, CoRunTruth, SimConfig) {
    let catalog = AppCatalog::trinity();
    let truth = CoRunTruth::build(&catalog, &ContentionModel::calibrated());
    let jobs: Vec<JobSpec> = (0..n_jobs as u64)
        .map(|i| {
            let nodes = 1 + ((i + wseed) % 3) as u32;
            JobSpec {
                malleable: if (i + wseed) % 2 == 0 {
                    Malleability::range(1, nodes + 2, 5.0)
                } else {
                    Malleability::RIGID
                },
                id: JobId(i),
                app: AppId((i % 8) as u8),
                nodes,
                submit: i as f64 * 40.0,
                runtime_exclusive: 200.0 + (i % 4) as f64 * 100.0,
                // Generous: a shrink stretches the wall-clock run and
                // must not routinely trip the walltime kill.
                walltime_estimate: 6_000.0,
                mem_per_node_mib: 0,
                share_eligible: false,
                user: 0,
            }
        })
        .collect();
    let workload = Workload::new(jobs).unwrap();
    let mut config = SimConfig::new(ClusterSpec::new(4, NodeSpec::tiny()));
    config.audit = false; // audited explicitly so proptest reports cleanly
    (workload, truth, config)
}

/// Re-derives the busy-core integral purely from the trace: each job
/// contributes `width × cores_per_node` between consecutive lifecycle
/// events (start, every reshape, finish). This is an oracle independent
/// of both the engine's incremental accumulator and the auditor's
/// replay machinery.
fn rebuild_busy_core_seconds(trace: &DecisionTrace, cores_per_node: f64) -> f64 {
    let mut open: BTreeMap<JobId, (f64, usize)> = BTreeMap::new();
    let mut busy = 0.0;
    for ev in trace.events() {
        match ev {
            TraceEvent::Started {
                time, job, nodes, ..
            } => {
                let prior = open.insert(*job, (*time, nodes.len()));
                assert!(prior.is_none(), "{job} started twice");
            }
            TraceEvent::Reshape { time, job, to, .. } => {
                let (t0, w) = open
                    .insert(*job, (*time, to.len()))
                    .expect("reshape of a job with no open interval");
                busy += w as f64 * (time - t0) * cores_per_node;
            }
            TraceEvent::Finished { time, job, .. } => {
                let (t0, w) = open
                    .remove(job)
                    .expect("finish of a job with no open interval");
                busy += w as f64 * (time - t0) * cores_per_node;
            }
            _ => {}
        }
    }
    assert!(open.is_empty(), "jobs left running at end of trace");
    busy
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any contract-respecting reshape schedule — including none — keeps
    /// every replay invariant intact, completes the campaign, and reruns
    /// bit-identically.
    #[test]
    fn arbitrary_reshape_schedules_audit_clean_and_replay_identically(
        sched_seed in 1u64..10_000,
        budget in 0u32..40,
        n_jobs in 2usize..10,
        wseed in 0u64..1_000,
    ) {
        let (workload, truth, config) = rig(n_jobs, wseed);
        let mut policy = ReshapingFcfs::new(sched_seed, budget);
        let (out, trace) = run_traced(&workload, &truth, &mut policy, &config);
        prop_assert!(out.complete(), "unscheduled {:?}", out.unscheduled);

        let summary = Auditor::new(&truth, &config)
            .with_queue_order_check()
            .audit(&trace, &out)
            .map_err(|vs| {
                TestCaseError::fail(format!("{} violation(s), first: {}", vs.len(), vs[0]))
            })?;
        let traced_reshapes = trace
            .events()
            .iter()
            .filter(|e| matches!(e, TraceEvent::Reshape { .. }))
            .count();
        prop_assert_eq!(summary.reshapes, traced_reshapes);
        prop_assert!(traced_reshapes <= 40, "budget must bound the churn");

        let mut policy = ReshapingFcfs::new(sched_seed, budget);
        let (out2, trace2) = run_traced(&workload, &truth, &mut policy, &config);
        prop_assert!(trace == trace2, "decision traces diverge across reruns");
        prop_assert!(out == out2, "outcomes diverge across reruns");
    }

    /// The engine's incrementally-maintained occupancy integral equals a
    /// from-scratch rebuild of the trace's start/reshape/finish
    /// intervals — and the auditor's own replay re-derivation agrees.
    #[test]
    fn occupancy_rebuilt_from_scratch_matches_incremental_state(
        sched_seed in 1u64..10_000,
        budget in 1u32..40,
        n_jobs in 2usize..10,
        wseed in 0u64..1_000,
    ) {
        let (workload, truth, config) = rig(n_jobs, wseed);
        let mut policy = ReshapingFcfs::new(sched_seed, budget);
        let (out, trace) = run_traced(&workload, &truth, &mut policy, &config);
        prop_assert!(out.complete());

        let cores = f64::from(config.cluster.node.cores());
        let rebuilt = rebuild_busy_core_seconds(&trace, cores);
        let rel = (rebuilt - out.busy_core_seconds).abs() / out.busy_core_seconds.max(1.0);
        prop_assert!(
            rel < 1e-9,
            "from-scratch rebuild {rebuilt} vs incremental {} (rel {rel})",
            out.busy_core_seconds
        );

        let summary = Auditor::new(&truth, &config)
            .audit(&trace, &out)
            .map_err(|vs| TestCaseError::fail(format!("audit failed: {}", vs[0])))?;
        let rel = (summary.busy_core_seconds - rebuilt).abs() / rebuilt.max(1.0);
        prop_assert!(rel < 1e-9, "auditor replay disagrees with rebuild");
    }
}
