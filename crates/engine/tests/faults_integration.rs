//! Integration tests for fault injection and maintenance windows.

use nodeshare_cluster::{ClusterSpec, JobId, NodeId, NodeSpec};
use nodeshare_engine::{
    run, Decision, FailureModel, MaintenanceWindow, SchedContext, Scheduler, SimConfig,
};
use nodeshare_perf::{AppCatalog, AppId, CoRunTruth, ContentionModel};
use nodeshare_workload::{JobSpec, Workload};

/// Starts the queue head exclusively whenever enough idle nodes exist.
struct Fcfs;
impl Scheduler for Fcfs {
    fn name(&self) -> &'static str {
        "test-fcfs"
    }
    fn schedule(&mut self, ctx: &SchedContext<'_>) -> Vec<Decision> {
        let Some(head) = ctx.queue.first() else {
            return vec![];
        };
        match nodeshare_engine::first_idle_nodes(ctx.cluster, head.nodes as usize) {
            Some(nodes) => vec![Decision::StartExclusive {
                job: head.id,
                nodes,
            }],
            None => vec![],
        }
    }
}

fn job(id: u64, submit: f64, nodes: u32, runtime: f64) -> JobSpec {
    JobSpec {
        malleable: Default::default(),
        id: JobId(id),
        app: AppId(0),
        nodes,
        submit,
        runtime_exclusive: runtime,
        walltime_estimate: runtime * 3.0,
        mem_per_node_mib: 0,
        share_eligible: false,
        user: 0,
    }
}

fn matrix() -> CoRunTruth {
    CoRunTruth::build(&AppCatalog::trinity(), &ContentionModel::calibrated())
}

#[test]
fn maintenance_window_blocks_new_work_but_not_running_jobs() {
    let mut config = SimConfig::new(ClusterSpec::new(1, NodeSpec::tiny()));
    config.maintenance = vec![MaintenanceWindow {
        nodes: vec![NodeId(0)],
        start: 100.0,
        end: 200.0,
    }];
    // Job 0 runs across the window start (drain does not evict).
    // Job 1 arrives mid-window and must wait for the window to close.
    let w = Workload::new(vec![job(0, 50.0, 1, 80.0), job(1, 110.0, 1, 10.0)]).unwrap();
    let out = run(&w, &matrix(), &mut Fcfs, &config);
    assert!(out.complete());
    let r0 = &out.records[0];
    assert_eq!(r0.start, 50.0);
    assert_eq!(r0.finish, 130.0, "running job rides through the drain");
    let r1 = &out.records[1];
    assert_eq!(r1.start, 200.0, "new work waits for the window to close");
}

#[test]
fn maintenance_windows_reject_invalid_definitions() {
    let mut config = SimConfig::new(ClusterSpec::new(1, NodeSpec::tiny()));
    config.maintenance = vec![MaintenanceWindow {
        nodes: vec![],
        start: 0.0,
        end: 1.0,
    }];
    let w = Workload::new(vec![job(0, 0.0, 1, 10.0)]).unwrap();
    let result = std::panic::catch_unwind(|| run(&w, &matrix(), &mut Fcfs, &config));
    assert!(result.is_err(), "empty window must panic at startup");
}

#[test]
fn failures_requeue_jobs_and_the_campaign_still_finishes() {
    let mut config = SimConfig::new(ClusterSpec::new(4, NodeSpec::tiny()));
    config.failures = Some(FailureModel {
        mtbf_per_node: 3_000.0, // aggressive: several failures per job
        repair_time: 200.0,
        seed: 5,
    });
    config.failure_horizon = 500_000.0;
    let jobs: Vec<JobSpec> = (0..12)
        .map(|i| job(i, i as f64 * 100.0, 1 + (i % 3) as u32, 800.0))
        .collect();
    let w = Workload::new(jobs).unwrap();
    let out = run(&w, &matrix(), &mut Fcfs, &config);
    assert!(out.complete(), "unscheduled: {:?}", out.unscheduled);
    assert_eq!(out.records.len(), 12);
    let restarts: u32 = out.records.iter().map(|r| r.restarts).sum();
    assert!(restarts > 0, "aggressive MTBF must cause requeues");
    for r in &out.records {
        r.validate().unwrap();
        // Restarted jobs still finish their full work in the final attempt.
        if !r.killed {
            assert!(r.run() >= r.runtime_exclusive - 1e-6);
        }
    }
    // Determinism with failures on.
    let out2 = run(&w, &matrix(), &mut Fcfs, &config);
    assert_eq!(out.records, out2.records);
}

#[test]
fn failures_do_not_fire_without_a_model() {
    let config = SimConfig::new(ClusterSpec::new(2, NodeSpec::tiny()));
    let w = Workload::new(vec![job(0, 0.0, 2, 1_000.0)]).unwrap();
    let out = run(&w, &matrix(), &mut Fcfs, &config);
    assert_eq!(out.records[0].restarts, 0);
    assert!(!out.records[0].killed);
}

#[test]
fn repaired_nodes_return_to_service() {
    // One node, high MTBF except guaranteed early failure via tiny MTBF,
    // long repair: the job restarts after the repair and completes.
    let mut config = SimConfig::new(ClusterSpec::new(1, NodeSpec::tiny()));
    config.failures = Some(FailureModel {
        mtbf_per_node: 400.0,
        repair_time: 1_000.0,
        seed: 3,
    });
    // Only sample failures early; afterwards the machine is stable.
    config.failure_horizon = 600.0;
    let w = Workload::new(vec![job(0, 0.0, 1, 500.0)]).unwrap();
    let out = run(&w, &matrix(), &mut Fcfs, &config);
    assert!(out.complete());
    let r = &out.records[0];
    if r.restarts > 0 {
        // The final attempt ran uninterrupted for the full runtime after
        // at least one repair period.
        assert!(r.finish >= 500.0 + 1_000.0 - 1e-6, "finish {}", r.finish);
    }
    assert!(!r.killed);
}

#[test]
fn checkpointing_salvages_work_across_requeues() {
    // One node, guaranteed early failure, long repair. Without
    // checkpoints the job restarts from scratch; with a 100-second
    // checkpoint interval it resumes from the last multiple of 100.
    let mut base = SimConfig::new(ClusterSpec::new(1, NodeSpec::tiny()));
    base.failures = Some(FailureModel {
        mtbf_per_node: 400.0,
        repair_time: 1_000.0,
        seed: 3,
    });
    base.failure_horizon = 600.0;
    let w = Workload::new(vec![job(0, 0.0, 1, 500.0)]).unwrap();

    let plain = run(&w, &matrix(), &mut Fcfs, &base);
    let mut ckpt_cfg = base.clone();
    ckpt_cfg.checkpoint_interval = Some(100.0);
    let ckpt = run(&w, &matrix(), &mut Fcfs, &ckpt_cfg);

    assert!(plain.complete() && ckpt.complete());
    let (rp, rc) = (&plain.records[0], &ckpt.records[0]);
    assert!(rp.restarts > 0, "failure model must trigger a requeue");
    assert_eq!(rp.restarts, rc.restarts, "same failure schedule");
    assert!(rc.salvaged_work > 0.0, "checkpoint must salvage work");
    assert_eq!(
        rc.salvaged_work % 100.0,
        0.0,
        "salvage at interval multiples"
    );
    assert!(
        rc.finish < rp.finish - 1.0,
        "checkpointing must finish earlier ({} vs {})",
        rc.finish,
        rp.finish
    );
    // Both deliver the full work; dilation stays ~1 in both accountings.
    assert!((rc.dilation() - 1.0).abs() < 1e-6);
    assert_eq!(rp.salvaged_work, 0.0);
}

#[test]
fn unsatisfiable_jobs_are_rejected_not_deadlocked() {
    // Head wants 10 nodes on a 2-node machine: FCFS would deadlock the
    // queue forever; the engine rejects it at arrival instead.
    let config = SimConfig::new(ClusterSpec::new(2, NodeSpec::tiny()));
    let mut huge = job(0, 0.0, 10, 100.0);
    huge.mem_per_node_mib = 0;
    let mut fat = job(1, 1.0, 1, 100.0);
    fat.mem_per_node_mib = (NodeSpec::tiny().mem_mib + 1) as u32;
    let ok = job(2, 2.0, 1, 100.0);
    let w = Workload::new(vec![huge, fat, ok]).unwrap();
    let out = run(&w, &matrix(), &mut Fcfs, &config);
    assert_eq!(out.rejected, vec![JobId(0), JobId(1)]);
    assert!(out.complete(), "the runnable job must still run");
    assert_eq!(out.records.len(), 1);
    assert_eq!(out.records[0].id, JobId(2));
}
