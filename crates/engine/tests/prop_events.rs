//! Property tests: the calendar event queue is observationally identical
//! to the reference binary heap under arbitrary push/pop interleavings —
//! duplicate timestamps, generation-stamped completions, pathological
//! time skew, and mid-stream drains included.

use nodeshare_cluster::{JobId, NodeId};
use nodeshare_engine::{Event, EventQueue, QueueBackend};
use proptest::prelude::*;

/// A deterministic event for stamp `n`: cycles through every variant so
/// tie-breaks are exercised across bands (arrivals vs. everything else)
/// and generation stamps ride along unchanged.
fn event_for(tag: u8, n: u64) -> Event {
    match tag % 6 {
        0 => Event::Arrival(n as usize),
        1 => Event::Completion {
            job: JobId(n),
            generation: n.wrapping_mul(0x9e37_79b9) | 1,
        },
        2 => Event::WalltimeKill {
            job: JobId(n),
            arm: n % 4,
        },
        3 => Event::SchedulerTick,
        4 => Event::NodeFail(NodeId((n % 64) as u32)),
        _ => Event::Snapshot(n as usize),
    }
}

/// A small palette with heavy duplication and extreme skew, so runs of
/// equal times and bucket-spanning gaps both occur constantly.
const TIMES: [f64; 12] = [
    0.0,
    0.5,
    0.5, // duplicated on purpose
    1.0,
    1.0 + 1e-12,
    3.75,
    10.0,
    10.0,
    99.5,
    1_000.0,
    1.0e9,
    3.2e12,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any interleaving of pushes (with duplicate timestamps) and pops
    /// leaves the calendar and heap backends in lock-step: identical
    /// peeks, identical pops (time *and* payload, so generation stamps
    /// match), identical drains.
    #[test]
    fn calendar_and_heap_pop_identically(
        ops in prop::collection::vec((0u8..5, 0usize..TIMES.len(), 0u8..6), 1..300),
    ) {
        let mut cal = EventQueue::with_backend(QueueBackend::Calendar);
        let mut heap = EventQueue::with_backend(QueueBackend::BinaryHeap);
        let mut stamp = 0u64;
        for (kind, time_idx, tag) in ops {
            if kind == 0 {
                prop_assert_eq!(cal.peek_time(), heap.peek_time());
                prop_assert_eq!(cal.pop(), heap.pop());
            } else {
                let t = TIMES[time_idx];
                let ev = event_for(tag, stamp);
                stamp += 1;
                cal.push(t, ev.clone());
                heap.push(t, ev);
            }
            prop_assert_eq!(cal.len(), heap.len());
        }
        // Drain what's left: full global order must agree.
        loop {
            prop_assert_eq!(cal.peek_time(), heap.peek_time());
            let (a, b) = (cal.pop(), heap.pop());
            prop_assert_eq!(&a, &b);
            if a.is_none() {
                break;
            }
        }
        prop_assert!(cal.is_empty() && heap.is_empty());
    }

    /// Monotone-ish simulation shape: pops interleaved with pushes at or
    /// after the last popped time (how the engine actually drives the
    /// queue), across resize thresholds.
    #[test]
    fn simulation_shaped_interleavings_stay_identical(
        seed in 0u64..10_000,
        n in 1usize..800,
    ) {
        let mut cal = EventQueue::with_backend(QueueBackend::Calendar);
        let mut heap = EventQueue::with_backend(QueueBackend::BinaryHeap);
        let mut x = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        let mut rng = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let mut now = 0.0f64;
        for i in 0..n {
            let r = rng();
            if r % 3 == 0 && !cal.is_empty() {
                let (a, b) = (cal.pop(), heap.pop());
                prop_assert_eq!(&a, &b);
                now = a.expect("non-empty").0;
            } else {
                // Offsets quantized so equal times recur; occasionally a
                // huge jump to force bucket-year wraparound.
                let offset = if r % 97 == 0 {
                    1.0e7
                } else {
                    ((r >> 8) % 16) as f64 * 0.25
                };
                let ev = event_for((r >> 4) as u8, i as u64);
                cal.push(now + offset, ev.clone());
                heap.push(now + offset, ev);
            }
        }
        while let Some(a) = cal.pop() {
            prop_assert_eq!(Some(a), heap.pop());
        }
        prop_assert!(heap.is_empty());
    }
}
