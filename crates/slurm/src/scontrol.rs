//! `scontrol show job` and `sprio`-style detailed views.

use crate::timefmt::format_walltime;
use nodeshare_cluster::JobId;
use nodeshare_engine::SimOutcome;
use nodeshare_metrics::{JobRecord, Table};
use nodeshare_perf::AppCatalog;
use nodeshare_workload::{JobSpec, Seconds};

/// Renders an `scontrol show job <id>`-style block for one record.
///
/// Returns `None` when the job does not exist in the outcome.
pub fn show_job(outcome: &SimOutcome, catalog: &AppCatalog, id: JobId) -> Option<String> {
    let r: &JobRecord = outcome.records.iter().find(|r| r.id == id)?;
    let app = catalog
        .get(r.app)
        .map(|a| a.name.clone())
        .unwrap_or_else(|| r.app.to_string());
    let state = if r.killed { "TIMEOUT" } else { "COMPLETED" };
    Some(format!(
        "JobId={id} Name={app} UserId=u{user}\n\
         \x20  JobState={state} Restarts={restarts}\n\
         \x20  SubmitTime={submit:.0} StartTime={start:.0} EndTime={end:.0}\n\
         \x20  RunTime={run} TimeLimit={limit} NumNodes={nodes}\n\
         \x20  OverSubscribe={share} SharedNodeSeconds={shared:.0}\n",
        id = r.id.0,
        user = r.user,
        restarts = r.restarts,
        submit = r.submit,
        start = r.start,
        end = r.finish,
        run = format_walltime(r.run()),
        limit = format_walltime(r.walltime_estimate),
        nodes = r.nodes,
        share = if r.shared_alloc { "YES" } else { "NO" },
        shared = r.shared_node_seconds,
    ))
}

/// Renders an `sprio`-style table of the waiting queue at time `t`:
/// job, age, size and the composite priority the multifactor plugin
/// would assign.
pub fn sprio_at(
    pending: &[JobSpec],
    weights: &crate::priority::PriorityWeights,
    t: Seconds,
    max_nodes: u32,
) -> String {
    let mut rows: Vec<(f64, Vec<String>)> = pending
        .iter()
        .map(|j| {
            let prio = weights.priority(j, t, max_nodes);
            (
                prio,
                vec![
                    j.id.0.to_string(),
                    format!("{:.0}", (t - j.submit).max(0.0)),
                    j.nodes.to_string(),
                    format!("{prio:.3}"),
                ],
            )
        })
        .collect();
    rows.sort_by(|a, b| b.0.total_cmp(&a.0));
    let mut table = Table::new(vec!["JOBID", "AGE(s)", "NODES", "PRIORITY"]);
    for (_, row) in rows {
        table.row(row);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::priority::PriorityWeights;
    use nodeshare_cluster::{ClusterSpec, NodeSpec};
    use nodeshare_core::Fcfs;
    use nodeshare_engine::{run, SimConfig};
    use nodeshare_perf::{AppId, CoRunTruth, ContentionModel};
    use nodeshare_workload::Workload;

    fn spec(id: u64, submit: f64, nodes: u32) -> JobSpec {
        JobSpec {
            malleable: Default::default(),
            id: JobId(id),
            app: AppId(0),
            nodes,
            submit,
            runtime_exclusive: 100.0,
            walltime_estimate: 300.0,
            mem_per_node_mib: 0,
            share_eligible: true,
            user: 9,
        }
    }

    #[test]
    fn show_job_renders_completed_jobs() {
        let catalog = AppCatalog::trinity();
        let truth = CoRunTruth::build(&catalog, &ContentionModel::calibrated());
        let w = Workload::new(vec![spec(0, 5.0, 1)]).unwrap();
        let out = run(
            &w,
            &truth,
            &mut Fcfs::new(),
            &SimConfig::new(ClusterSpec::new(1, NodeSpec::tiny())),
        );
        let s = show_job(&out, &catalog, JobId(0)).unwrap();
        assert!(s.contains("JobState=COMPLETED"));
        assert!(s.contains("Name=miniFE"));
        assert!(s.contains("NumNodes=1"));
        assert!(s.contains("UserId=u9"));
        assert!(show_job(&out, &catalog, JobId(42)).is_none());
    }

    #[test]
    fn sprio_sorts_by_priority() {
        let weights = PriorityWeights {
            age: 1.0,
            size: 0.0,
            age_horizon: 100.0,
        };
        // Older job first under a pure-age priority.
        let pending = vec![spec(1, 90.0, 1), spec(2, 10.0, 8)];
        let s = sprio_at(&pending, &weights, 100.0, 8);
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[2].trim_start().starts_with('2'), "{s}");
        assert!(lines[3].trim_start().starts_with('1'), "{s}");
    }
}
