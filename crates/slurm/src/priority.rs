//! Multifactor job priority — a SLURM `priority/multifactor` analog.
//!
//! Real queues are rarely pure FCFS: age and size factors reorder
//! waiting jobs. [`MultifactorPriority`] wraps any scheduling policy and
//! presents it a priority-sorted view of the queue; the inner policy's
//! "head" is then the highest-priority job rather than the oldest.

use nodeshare_engine::{Decision, SchedContext, Scheduler};
use nodeshare_workload::{JobSpec, Seconds};

/// Priority weights (SLURM's `PriorityWeight*` knobs, simplified).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PriorityWeights {
    /// Weight of queue age (normalized by `age_horizon`).
    pub age: f64,
    /// Weight of job size (normalized by the largest request seen).
    pub size: f64,
    /// Age at which the age factor saturates, seconds.
    pub age_horizon: Seconds,
}

impl Default for PriorityWeights {
    fn default() -> Self {
        PriorityWeights {
            age: 1.0,
            size: 0.5,
            age_horizon: 86_400.0,
        }
    }
}

impl PriorityWeights {
    /// Priority of `job` at `now` (higher runs first).
    pub fn priority(&self, job: &JobSpec, now: Seconds, max_nodes: u32) -> f64 {
        let age = ((now - job.submit) / self.age_horizon).clamp(0.0, 1.0);
        let size = job.nodes as f64 / max_nodes.max(1) as f64;
        self.age * age + self.size * size
    }
}

/// Wraps a policy with a priority-ordered queue view.
#[derive(Clone, Debug)]
pub struct MultifactorPriority<S> {
    inner: S,
    weights: PriorityWeights,
    max_nodes: u32,
}

impl<S> MultifactorPriority<S> {
    /// Wraps `inner` with the given weights; `max_nodes` normalizes the
    /// size factor (usually the cluster size).
    pub fn new(inner: S, weights: PriorityWeights, max_nodes: u32) -> Self {
        MultifactorPriority {
            inner,
            weights,
            max_nodes,
        }
    }

    /// The wrapped policy.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: Scheduler> Scheduler for MultifactorPriority<S> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn schedule(&mut self, ctx: &SchedContext<'_>) -> Vec<Decision> {
        let mut sorted: Vec<JobSpec> = ctx.queue.to_vec();
        // Stable descending priority; ties keep submission order.
        sorted.sort_by(|a, b| {
            let pa = self.weights.priority(a, ctx.now, self.max_nodes);
            let pb = self.weights.priority(b, ctx.now, self.max_nodes);
            pb.total_cmp(&pa)
        });
        let view = SchedContext {
            now: ctx.now,
            queue: &sorted,
            cluster: ctx.cluster,
            running: ctx.running,
            shared_grace: ctx.shared_grace,
            completed: ctx.completed,
            telemetry: ctx.telemetry,
        };
        self.inner.schedule(&view)
    }

    fn explain(
        &self,
        ctx: &SchedContext<'_>,
        decision: &Decision,
    ) -> nodeshare_engine::StartReason {
        // Justify against the priority order the inner policy actually
        // saw, not raw submission order — under multifactor priority a
        // younger-but-higher-priority start is head-of-queue, not a jump.
        let mut sorted: Vec<JobSpec> = ctx.queue.to_vec();
        sorted.sort_by(|a, b| {
            let pa = self.weights.priority(a, ctx.now, self.max_nodes);
            let pb = self.weights.priority(b, ctx.now, self.max_nodes);
            pb.total_cmp(&pa)
        });
        let view = SchedContext {
            now: ctx.now,
            queue: &sorted,
            cluster: ctx.cluster,
            running: ctx.running,
            shared_grace: ctx.shared_grace,
            completed: ctx.completed,
            telemetry: ctx.telemetry,
        };
        self.inner.explain(&view, decision)
    }

    fn explain_all(
        &self,
        ctx: &SchedContext<'_>,
        decisions: &[Decision],
    ) -> Vec<nodeshare_engine::StartReason> {
        // One priority re-sort justifies the whole invocation — the
        // per-decision path re-sorted the queue for every decision.
        let mut sorted: Vec<JobSpec> = ctx.queue.to_vec();
        sorted.sort_by(|a, b| {
            let pa = self.weights.priority(a, ctx.now, self.max_nodes);
            let pb = self.weights.priority(b, ctx.now, self.max_nodes);
            pb.total_cmp(&pa)
        });
        let view = SchedContext {
            now: ctx.now,
            queue: &sorted,
            cluster: ctx.cluster,
            running: ctx.running,
            shared_grace: ctx.shared_grace,
            completed: ctx.completed,
            telemetry: ctx.telemetry,
        };
        self.inner.explain_all(&view, decisions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodeshare_cluster::{ClusterSpec, JobId, NodeSpec};
    use nodeshare_core::Fcfs;
    use nodeshare_engine::{run, SimConfig};
    use nodeshare_perf::{AppCatalog, AppId, CoRunTruth, ContentionModel};
    use nodeshare_workload::Workload;

    fn job(id: u64, submit: f64, nodes: u32) -> JobSpec {
        JobSpec {
            malleable: Default::default(),
            id: JobId(id),
            app: AppId(0),
            nodes,
            submit,
            runtime_exclusive: 100.0,
            walltime_estimate: 200.0,
            mem_per_node_mib: 0,
            share_eligible: false,
            user: 0,
        }
    }

    #[test]
    fn size_factor_prefers_large_jobs() {
        let w = PriorityWeights {
            age: 0.0,
            size: 1.0,
            age_horizon: 3600.0,
        };
        assert!(w.priority(&job(0, 0.0, 8), 0.0, 8) > w.priority(&job(1, 0.0, 1), 0.0, 8));
    }

    #[test]
    fn age_factor_saturates() {
        let w = PriorityWeights::default();
        let j = job(0, 0.0, 1);
        let p1 = w.priority(&j, 86_400.0, 8);
        let p2 = w.priority(&j, 10.0 * 86_400.0, 8);
        assert_eq!(p1, p2, "age factor saturates at the horizon");
    }

    #[test]
    fn large_job_jumps_the_queue_under_size_priority() {
        // Jobs 0..2 are 1-node, job 3 is 4-node; with a pure size
        // priority the 4-node job becomes head and runs before job 1 and
        // 2, even though it was submitted last.
        let jobs = vec![
            job(0, 0.0, 4), // occupies the whole 4-node cluster first
            job(1, 1.0, 1),
            job(2, 2.0, 1),
            job(3, 3.0, 4),
        ];
        let workload = Workload::new(jobs).unwrap();
        let catalog = AppCatalog::trinity();
        let matrix = CoRunTruth::build(&catalog, &ContentionModel::calibrated());
        let config = SimConfig::new(ClusterSpec::new(4, NodeSpec::tiny()));
        let weights = PriorityWeights {
            age: 0.0,
            size: 1.0,
            age_horizon: 3600.0,
        };
        let mut sched = MultifactorPriority::new(Fcfs::new(), weights, 4);
        let out = run(&workload, &matrix, &mut sched, &config);
        assert!(out.complete());
        let start = |id: u64| out.records[id as usize].start;
        assert!(
            start(3) < start(1) && start(3) < start(2),
            "size priority must run the 4-node job before the 1-node jobs"
        );
    }

    #[test]
    fn name_passes_through() {
        let sched = MultifactorPriority::new(Fcfs::new(), PriorityWeights::default(), 8);
        assert_eq!(sched.name(), "fcfs");
        assert_eq!(sched.inner().name(), "fcfs");
    }
}
