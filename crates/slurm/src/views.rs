//! `squeue` / `sinfo` / `sacct`-style views over simulation results.
//!
//! The views reconstruct the system state at any instant from the
//! completion records and occupancy series, so examples can show the
//! familiar operator's perspective of a run.

use crate::timefmt::format_walltime;
use nodeshare_cluster::ClusterSpec;
use nodeshare_engine::SimOutcome;
use nodeshare_metrics::{JobRecord, Table};
use nodeshare_perf::AppCatalog;
use nodeshare_workload::Seconds;

/// Job state at an instant, in `squeue` notation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Pending (submitted, not started).
    Pd,
    /// Running.
    R,
    /// Completed.
    Cd,
    /// Failed / killed at walltime.
    F,
}

impl JobState {
    /// The squeue code.
    pub const fn code(self) -> &'static str {
        match self {
            JobState::Pd => "PD",
            JobState::R => "R",
            JobState::Cd => "CD",
            JobState::F => "F",
        }
    }

    /// State of a record at time `t`.
    pub fn of(record: &JobRecord, t: Seconds) -> Option<JobState> {
        if t < record.submit {
            None
        } else if t < record.start {
            Some(JobState::Pd)
        } else if t < record.finish {
            Some(JobState::R)
        } else if record.killed {
            Some(JobState::F)
        } else {
            Some(JobState::Cd)
        }
    }
}

/// Renders an `squeue`-style table of pending and running jobs at `t`.
pub fn squeue_at(outcome: &SimOutcome, catalog: &AppCatalog, t: Seconds) -> String {
    let mut table = Table::new(vec!["JOBID", "NAME", "USER", "ST", "TIME", "NODES", "MODE"]);
    for r in &outcome.records {
        let Some(state) = JobState::of(r, t) else {
            continue;
        };
        if !matches!(state, JobState::Pd | JobState::R) {
            continue;
        }
        let elapsed = match state {
            JobState::R => t - r.start,
            _ => 0.0,
        };
        table.row(vec![
            r.id.0.to_string(),
            catalog
                .get(r.app)
                .map(|a| a.name.clone())
                .unwrap_or_else(|| r.app.to_string()),
            format!("u{}", r.user),
            state.code().to_string(),
            format_walltime(elapsed),
            r.nodes.to_string(),
            if r.shared_alloc { "shared" } else { "excl" }.to_string(),
        ]);
    }
    table.render()
}

/// Renders an `sinfo`-style one-line node-state summary at `t`.
pub fn sinfo_at(outcome: &SimOutcome, spec: &ClusterSpec, t: Seconds) -> String {
    let cores_per_node = spec.node.cores() as f64;
    let busy_nodes = (outcome.busy_cores.value_at(t) / cores_per_node).round() as u64;
    let shared_nodes = (outcome.shared_cores.value_at(t) / cores_per_node).round() as u64;
    let total = spec.node_count as u64;
    let idle = total.saturating_sub(busy_nodes);
    format!(
        "NODES {total}  ALLOC {busy}  (shared {shared})  IDLE {idle}  QUEUE {queue}",
        busy = busy_nodes,
        shared = shared_nodes,
        queue = outcome.queue_depth.value_at(t) as u64,
    )
}

/// Renders an `sacct`-style accounting table for the whole run.
pub fn sacct(outcome: &SimOutcome, catalog: &AppCatalog) -> String {
    let mut table = Table::new(vec![
        "JOBID", "NAME", "NODES", "SUBMIT", "START", "END", "ELAPSED", "STATE", "MODE",
    ]);
    for r in &outcome.records {
        table.row(vec![
            r.id.0.to_string(),
            catalog
                .get(r.app)
                .map(|a| a.name.clone())
                .unwrap_or_else(|| r.app.to_string()),
            r.nodes.to_string(),
            format!("{:.0}", r.submit),
            format!("{:.0}", r.start),
            format!("{:.0}", r.finish),
            format_walltime(r.run()),
            if r.killed { "TIMEOUT" } else { "COMPLETED" }.to_string(),
            if r.shared_alloc { "shared" } else { "excl" }.to_string(),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodeshare_cluster::{ClusterSpec, NodeSpec};
    use nodeshare_core::Fcfs;
    use nodeshare_engine::{run, SimConfig};
    use nodeshare_perf::{CoRunTruth, ContentionModel};
    use nodeshare_workload::{JobSpec, Workload};

    fn outcome() -> (SimOutcome, AppCatalog, ClusterSpec) {
        let catalog = AppCatalog::trinity();
        let matrix = CoRunTruth::build(&catalog, &ContentionModel::calibrated());
        let spec = ClusterSpec::new(2, NodeSpec::tiny());
        let jobs = vec![
            JobSpec {
                malleable: Default::default(),
                id: nodeshare_cluster::JobId(0),
                app: catalog.by_name("miniFE").unwrap().id,
                nodes: 2,
                submit: 0.0,
                runtime_exclusive: 100.0,
                walltime_estimate: 200.0,
                mem_per_node_mib: 64,
                share_eligible: false,
                user: 3,
            },
            JobSpec {
                malleable: Default::default(),
                id: nodeshare_cluster::JobId(1),
                app: catalog.by_name("SNAP").unwrap().id,
                nodes: 1,
                submit: 10.0,
                runtime_exclusive: 400.0,
                walltime_estimate: 300.0, // will be killed
                mem_per_node_mib: 64,
                share_eligible: false,
                user: 4,
            },
        ];
        let w = Workload::new(jobs).unwrap();
        let out = run(&w, &matrix, &mut Fcfs::new(), &SimConfig::new(spec));
        (out, catalog, spec)
    }

    #[test]
    fn job_states_over_time() {
        let (out, _, _) = outcome();
        let r0 = &out.records[0];
        assert_eq!(JobState::of(r0, -1.0), None);
        assert_eq!(JobState::of(r0, 50.0), Some(JobState::R));
        assert_eq!(JobState::of(r0, 150.0), Some(JobState::Cd));
        let r1 = &out.records[1];
        assert_eq!(JobState::of(r1, 50.0), Some(JobState::Pd));
        assert!(r1.killed);
        assert_eq!(JobState::of(r1, 10_000.0), Some(JobState::F));
    }

    #[test]
    fn squeue_shows_pending_and_running() {
        let (out, catalog, _) = outcome();
        let s = squeue_at(&out, &catalog, 50.0);
        assert!(s.contains("miniFE"));
        assert!(s.contains(" R"));
        assert!(s.contains("PD"));
        assert!(s.contains("u3"));
        // After everything finished the table is empty of rows.
        let s = squeue_at(&out, &catalog, 100_000.0);
        assert_eq!(s.lines().count(), 2, "header + separator only");
    }

    #[test]
    fn sinfo_counts_nodes() {
        let (out, _, spec) = outcome();
        let s = sinfo_at(&out, &spec, 50.0);
        assert!(s.contains("NODES 2"), "{s}");
        assert!(s.contains("ALLOC 2"), "{s}");
        let s_after = sinfo_at(&out, &spec, 100_000.0);
        assert!(s_after.contains("IDLE 2"), "{s_after}");
    }

    #[test]
    fn sacct_reports_timeouts() {
        let (out, catalog, _) = outcome();
        let s = sacct(&out, &catalog);
        assert!(s.contains("COMPLETED"));
        assert!(s.contains("TIMEOUT"));
        assert!(s.contains("SNAP"));
        assert_eq!(s.lines().count(), 4, "header + separator + 2 jobs");
    }
}
