//! `sbatch`-style job scripts: `#SBATCH` header parsing.
//!
//! The examples submit jobs the way SLURM users do — a shell script whose
//! header carries the resource request:
//!
//! ```text
//! #!/bin/bash
//! #SBATCH --job-name=minife-512
//! #SBATCH --nodes=16
//! #SBATCH --time=01:30:00
//! #SBATCH --mem=24G
//! #SBATCH --oversubscribe
//! srun ./miniFE nx=420 ny=420 nz=420
//! ```

use crate::timefmt::{parse_walltime, TimeParseError};
use nodeshare_workload::Seconds;
use serde::{Deserialize, Serialize};

/// A parsed `#SBATCH` header.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct JobScript {
    /// `--job-name`.
    pub name: Option<String>,
    /// `--nodes` (default 1).
    pub nodes: u32,
    /// `--time`, seconds.
    pub walltime: Option<Seconds>,
    /// `--mem` per node, MiB.
    pub mem_per_node_mib: Option<u64>,
    /// `--oversubscribe` — the job opts into node sharing.
    pub oversubscribe: bool,
    /// `--partition`.
    pub partition: Option<String>,
    /// The application command line (first non-comment, non-shebang line).
    pub command: Option<String>,
}

/// Error from parsing a job script.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScriptError {
    /// An `#SBATCH` line had no recognizable `--option`.
    BadDirective(String),
    /// An option's value failed to parse.
    BadValue {
        /// Option name (e.g. `nodes`).
        option: String,
        /// Offending value.
        value: String,
    },
}

impl std::fmt::Display for ScriptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScriptError::BadDirective(l) => write!(f, "unparseable #SBATCH line {l:?}"),
            ScriptError::BadValue { option, value } => {
                write!(f, "bad value {value:?} for --{option}")
            }
        }
    }
}

impl std::error::Error for ScriptError {}

impl From<TimeParseError> for ScriptError {
    fn from(e: TimeParseError) -> Self {
        ScriptError::BadValue {
            option: "time".into(),
            value: e.0,
        }
    }
}

/// Parses `--mem` values: plain MiB, or with `K`/`M`/`G`/`T` suffix.
fn parse_mem(v: &str) -> Option<u64> {
    let v = v.trim();
    let (num, mult) = match v.chars().last()? {
        'K' | 'k' => (&v[..v.len() - 1], 1.0 / 1024.0),
        'M' | 'm' => (&v[..v.len() - 1], 1.0),
        'G' | 'g' => (&v[..v.len() - 1], 1024.0),
        'T' | 't' => (&v[..v.len() - 1], 1024.0 * 1024.0),
        _ => (v, 1.0),
    };
    let n: f64 = num.parse().ok()?;
    if n < 0.0 {
        return None;
    }
    Some((n * mult).round() as u64)
}

impl JobScript {
    /// Parses a job script's `#SBATCH` header.
    pub fn parse(text: &str) -> Result<JobScript, ScriptError> {
        let mut script = JobScript {
            name: None,
            nodes: 1,
            walltime: None,
            mem_per_node_mib: None,
            oversubscribe: false,
            partition: None,
            command: None,
        };
        for line in text.lines() {
            let trimmed = line.trim();
            if let Some(rest) = trimmed.strip_prefix("#SBATCH") {
                let rest = rest.trim();
                let (opt, value) = match rest.split_once('=') {
                    Some((o, v)) => (o.trim(), Some(v.trim())),
                    None => match rest.split_once(char::is_whitespace) {
                        Some((o, v)) => (o.trim(), Some(v.trim())),
                        None => (rest, None),
                    },
                };
                let opt = opt
                    .strip_prefix("--")
                    .ok_or_else(|| ScriptError::BadDirective(trimmed.to_string()))?;
                let need = |v: Option<&str>| {
                    v.filter(|v| !v.is_empty())
                        .map(str::to_string)
                        .ok_or_else(|| ScriptError::BadValue {
                            option: opt.to_string(),
                            value: String::new(),
                        })
                };
                match opt {
                    "job-name" => script.name = Some(need(value)?),
                    "nodes" | "N" => {
                        let v = need(value)?;
                        script.nodes = v.parse().map_err(|_| ScriptError::BadValue {
                            option: "nodes".into(),
                            value: v,
                        })?;
                    }
                    "time" | "t" => script.walltime = Some(parse_walltime(&need(value)?)?),
                    "mem" => {
                        let v = need(value)?;
                        script.mem_per_node_mib =
                            Some(parse_mem(&v).ok_or(ScriptError::BadValue {
                                option: "mem".into(),
                                value: v,
                            })?);
                    }
                    "oversubscribe" | "share" => script.oversubscribe = true,
                    "exclusive" => script.oversubscribe = false,
                    "partition" | "p" => script.partition = Some(need(value)?),
                    // Unknown directives are ignored, as sbatch ignores
                    // options that only concern other plugins.
                    _ => {}
                }
            } else if !trimmed.is_empty() && !trimmed.starts_with('#') && script.command.is_none() {
                script.command = Some(trimmed.to_string());
            }
        }
        Ok(script)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCRIPT: &str = "\
#!/bin/bash
#SBATCH --job-name=minife-512
#SBATCH --nodes=16
#SBATCH --time=01:30:00
#SBATCH --mem=24G
#SBATCH --oversubscribe
#SBATCH --partition=batch

srun ./miniFE nx=420 ny=420 nz=420
";

    #[test]
    fn parses_full_script() {
        let s = JobScript::parse(SCRIPT).unwrap();
        assert_eq!(s.name.as_deref(), Some("minife-512"));
        assert_eq!(s.nodes, 16);
        assert_eq!(s.walltime, Some(5_400.0));
        assert_eq!(s.mem_per_node_mib, Some(24 * 1024));
        assert!(s.oversubscribe);
        assert_eq!(s.partition.as_deref(), Some("batch"));
        assert_eq!(
            s.command.as_deref(),
            Some("srun ./miniFE nx=420 ny=420 nz=420")
        );
    }

    #[test]
    fn space_separated_options_work() {
        let s = JobScript::parse("#SBATCH --nodes 4\n#SBATCH --time 30\n").unwrap();
        assert_eq!(s.nodes, 4);
        assert_eq!(s.walltime, Some(1_800.0));
    }

    #[test]
    fn defaults_when_missing() {
        let s = JobScript::parse("echo hi\n").unwrap();
        assert_eq!(s.nodes, 1);
        assert_eq!(s.walltime, None);
        assert!(!s.oversubscribe);
        assert_eq!(s.command.as_deref(), Some("echo hi"));
    }

    #[test]
    fn exclusive_overrides_oversubscribe() {
        let s = JobScript::parse("#SBATCH --oversubscribe\n#SBATCH --exclusive\n").unwrap();
        assert!(!s.oversubscribe);
    }

    #[test]
    fn mem_suffixes() {
        assert_eq!(parse_mem("512"), Some(512));
        assert_eq!(parse_mem("2G"), Some(2_048));
        assert_eq!(parse_mem("1024K"), Some(1));
        assert_eq!(parse_mem("1T"), Some(1_048_576));
        assert_eq!(parse_mem("junk"), None);
        assert_eq!(parse_mem("-1G"), None);
    }

    #[test]
    fn bad_directives_error() {
        assert!(matches!(
            JobScript::parse("#SBATCH nodes=4\n"),
            Err(ScriptError::BadDirective(_))
        ));
        assert!(matches!(
            JobScript::parse("#SBATCH --nodes=four\n"),
            Err(ScriptError::BadValue { .. })
        ));
        assert!(matches!(
            JobScript::parse("#SBATCH --time=1:2:3:4\n"),
            Err(ScriptError::BadValue { .. })
        ));
    }

    #[test]
    fn unknown_directives_ignored() {
        let s = JobScript::parse("#SBATCH --mail-user=a@b.c\n#SBATCH --nodes=2\n").unwrap();
        assert_eq!(s.nodes, 2);
    }
}
