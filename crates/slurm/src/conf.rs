//! `slurm.conf`-style cluster configuration parsing.
//!
//! A minimal but faithful subset: `NodeName` lines define the machine
//! (with `n[0-127]` bracket ranges), `PartitionName` lines define
//! partitions with time limits and the `OverSubscribe` flag that gates
//! node sharing — the knob the paper's deployment story turns.
//!
//! ```text
//! NodeName=n[0-127] Sockets=2 CoresPerSocket=16 ThreadsPerCore=2 RealMemory=131072
//! PartitionName=batch Nodes=ALL Default=YES MaxTime=12:00:00 OverSubscribe=YES
//! PartitionName=debug Nodes=ALL MaxTime=30:00 OverSubscribe=NO
//! ```

use crate::timefmt::parse_walltime;
use nodeshare_cluster::{ClusterSpec, NodeSpec};
use nodeshare_workload::Seconds;
use serde::{Deserialize, Serialize};

/// A scheduling partition.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Partition {
    /// Partition name.
    pub name: String,
    /// Maximum walltime for jobs in this partition, if limited.
    pub max_time: Option<Seconds>,
    /// Whether jobs here may opt into node sharing (`OverSubscribe=YES`).
    pub oversubscribe: bool,
    /// Whether this is the default partition.
    pub default: bool,
}

/// Parsed cluster configuration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SlurmConf {
    /// The machine.
    pub cluster: ClusterSpec,
    /// Partitions in declaration order.
    pub partitions: Vec<Partition>,
}

/// Error from configuration parsing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConfError {
    /// A line had an unparseable `Key=Value` token.
    BadToken {
        /// 1-based line number.
        line: usize,
        /// The token.
        token: String,
    },
    /// No `NodeName` line was present.
    MissingNodes,
    /// Value failed to parse.
    BadValue {
        /// 1-based line number.
        line: usize,
        /// Key whose value is bad.
        key: String,
        /// The value.
        value: String,
    },
}

impl std::fmt::Display for ConfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfError::BadToken { line, token } => write!(f, "line {line}: bad token {token:?}"),
            ConfError::MissingNodes => write!(f, "no NodeName line"),
            ConfError::BadValue { line, key, value } => {
                write!(f, "line {line}: bad value {value:?} for {key}")
            }
        }
    }
}

impl std::error::Error for ConfError {}

/// Extracts the node count from a `NodeName` value: `n[0-127]` → 128,
/// a plain name → 1.
fn node_count_of(name: &str) -> Option<u32> {
    if let (Some(open), Some(close)) = (name.find('['), name.find(']')) {
        let range = &name[open + 1..close];
        let (lo, hi) = range.split_once('-')?;
        let lo: u32 = lo.parse().ok()?;
        let hi: u32 = hi.parse().ok()?;
        (hi >= lo).then(|| hi - lo + 1)
    } else {
        Some(1)
    }
}

impl SlurmConf {
    /// The canonical evaluation configuration: 128 Trinity-like nodes,
    /// one oversubscribable `batch` partition.
    pub fn evaluation() -> Self {
        SlurmConf {
            cluster: ClusterSpec::evaluation(),
            partitions: vec![Partition {
                name: "batch".into(),
                max_time: Some(43_200.0),
                oversubscribe: true,
                default: true,
            }],
        }
    }

    /// Parses configuration text.
    pub fn parse(text: &str) -> Result<SlurmConf, ConfError> {
        let mut cluster: Option<ClusterSpec> = None;
        let mut partitions = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut pairs = Vec::new();
            for token in line.split_whitespace() {
                let (k, v) = token.split_once('=').ok_or(ConfError::BadToken {
                    line: lineno + 1,
                    token: token.to_string(),
                })?;
                pairs.push((k.to_string(), v.to_string()));
            }
            let Some((first_key, first_val)) = pairs.first().cloned() else {
                continue;
            };
            let get = |key: &str| -> Option<String> {
                pairs
                    .iter()
                    .find(|(k, _)| k.eq_ignore_ascii_case(key))
                    .map(|(_, v)| v.clone())
            };
            let bad = |key: &str, value: &str| ConfError::BadValue {
                line: lineno + 1,
                key: key.to_string(),
                value: value.to_string(),
            };
            if first_key.eq_ignore_ascii_case("NodeName") {
                let count = node_count_of(&first_val).ok_or_else(|| bad("NodeName", &first_val))?;
                let parse_u = |key: &str, default: u64| -> Result<u64, ConfError> {
                    match get(key) {
                        Some(v) => v.parse().map_err(|_| bad(key, &v)),
                        None => Ok(default),
                    }
                };
                let node = NodeSpec {
                    sockets: parse_u("Sockets", 2)? as u8,
                    cores_per_socket: parse_u("CoresPerSocket", 16)? as u16,
                    smt: parse_u("ThreadsPerCore", 2)? as u8,
                    mem_mib: parse_u("RealMemory", 128 * 1024)?,
                };
                let spec = ClusterSpec::new(count, node);
                spec.validate().map_err(|_| bad("NodeName", &first_val))?;
                cluster = Some(spec);
            } else if first_key.eq_ignore_ascii_case("PartitionName") {
                let max_time = match get("MaxTime") {
                    Some(v) if v.eq_ignore_ascii_case("UNLIMITED") => None,
                    Some(v) => Some(parse_walltime(&v).map_err(|_| bad("MaxTime", &v))?),
                    None => None,
                };
                let yes = |v: &Option<String>| {
                    v.as_deref()
                        .map(|v| v.eq_ignore_ascii_case("YES"))
                        .unwrap_or(false)
                };
                partitions.push(Partition {
                    name: first_val,
                    max_time,
                    oversubscribe: yes(&get("OverSubscribe")),
                    default: yes(&get("Default")),
                });
            }
            // Other directives (SchedulerType, etc.) are accepted and
            // ignored, as real SLURM tolerates unknown plugins elsewhere.
        }
        Ok(SlurmConf {
            cluster: cluster.ok_or(ConfError::MissingNodes)?,
            partitions,
        })
    }

    /// The default partition (explicitly flagged, else the first).
    pub fn default_partition(&self) -> Option<&Partition> {
        self.partitions
            .iter()
            .find(|p| p.default)
            .or_else(|| self.partitions.first())
    }

    /// Partition by name.
    pub fn partition(&self, name: &str) -> Option<&Partition> {
        self.partitions.iter().find(|p| p.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CONF: &str = "\
# evaluation machine
NodeName=n[0-127] Sockets=2 CoresPerSocket=16 ThreadsPerCore=2 RealMemory=131072
PartitionName=batch Nodes=ALL Default=YES MaxTime=12:00:00 OverSubscribe=YES
PartitionName=debug Nodes=ALL MaxTime=30:00 OverSubscribe=NO
";

    #[test]
    fn parses_evaluation_conf() {
        let conf = SlurmConf::parse(CONF).unwrap();
        assert_eq!(conf.cluster.node_count, 128);
        assert_eq!(conf.cluster.node.cores(), 32);
        assert_eq!(conf.cluster.node.smt, 2);
        assert_eq!(conf.cluster.node.mem_mib, 131_072);
        assert_eq!(conf.partitions.len(), 2);
        let batch = conf.partition("batch").unwrap();
        assert!(batch.oversubscribe && batch.default);
        assert_eq!(batch.max_time, Some(43_200.0));
        let debug = conf.partition("debug").unwrap();
        assert!(!debug.oversubscribe);
        assert_eq!(debug.max_time, Some(1_800.0));
        assert_eq!(conf.default_partition().unwrap().name, "batch");
    }

    #[test]
    fn single_node_and_unlimited() {
        let conf = SlurmConf::parse(
            "NodeName=login Sockets=1 CoresPerSocket=8 ThreadsPerCore=1 RealMemory=65536\n\
             PartitionName=all MaxTime=UNLIMITED\n",
        )
        .unwrap();
        assert_eq!(conf.cluster.node_count, 1);
        assert_eq!(conf.cluster.node.smt, 1);
        assert_eq!(conf.partitions[0].max_time, None);
        // No explicit default: first partition wins.
        assert_eq!(conf.default_partition().unwrap().name, "all");
    }

    #[test]
    fn errors() {
        assert_eq!(SlurmConf::parse("").unwrap_err(), ConfError::MissingNodes);
        assert!(matches!(
            SlurmConf::parse("NodeName=n[5-2]\n"),
            Err(ConfError::BadValue { .. })
        ));
        assert!(matches!(
            SlurmConf::parse("NodeName n1\n"),
            Err(ConfError::BadToken { .. })
        ));
        assert!(matches!(
            SlurmConf::parse("NodeName=n1 Sockets=two\n"),
            Err(ConfError::BadValue { .. })
        ));
    }

    #[test]
    fn evaluation_matches_paper_shape() {
        let conf = SlurmConf::evaluation();
        assert_eq!(conf.cluster, ClusterSpec::evaluation());
        assert!(conf.default_partition().unwrap().oversubscribe);
    }

    #[test]
    fn node_ranges() {
        assert_eq!(node_count_of("n[0-127]"), Some(128));
        assert_eq!(node_count_of("n[3-3]"), Some(1));
        assert_eq!(node_count_of("login"), Some(1));
        assert_eq!(node_count_of("n[5-2]"), None);
        assert_eq!(node_count_of("n[x-2]"), None);
    }
}
