#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
//! # nodeshare-slurm
//!
//! A SLURM-shaped facade over the nodeshare engine — the layer the paper
//! implemented inside the real SLURM workload manager:
//!
//! * [`timefmt`] — SLURM wall-clock formats (`1-06:30:00`),
//! * [`script`] — `#SBATCH` job-script parsing,
//! * [`conf`] — `slurm.conf`-style machine/partition configuration, with
//!   the `OverSubscribe` flag gating node sharing per partition,
//! * [`batch`] — [`BatchSystem`]: submission with partition limits and
//!   share gating, then a full scheduling run,
//! * [`priority`] — a `priority/multifactor` analog wrapping any policy,
//! * [`views`] — `squeue` / `sinfo` / `sacct` renderers over outcomes.
//!
//! ```
//! use nodeshare_core::Backfill;
//! use nodeshare_perf::{AppCatalog, ContentionModel};
//! use nodeshare_slurm::{BatchSystem, SlurmConf};
//!
//! let mut bs = BatchSystem::new(SlurmConf::evaluation(), AppCatalog::trinity());
//! bs.submit_script(
//!     "#SBATCH --nodes=2\n#SBATCH --time=30:00\nsrun ./miniFE\n",
//!     0.0, 1, 900.0,
//! ).unwrap();
//! let out = bs.run(&mut Backfill::easy(), &ContentionModel::calibrated());
//! assert!(out.complete());
//! ```

pub mod batch;
pub mod conf;
pub mod priority;
pub mod scontrol;
pub mod script;
pub mod timefmt;
pub mod views;

pub use batch::{AcceptedJob, BatchSystem, SubmitError};
pub use conf::{ConfError, Partition, SlurmConf};
pub use priority::{MultifactorPriority, PriorityWeights};
pub use scontrol::{show_job, sprio_at};
pub use script::{JobScript, ScriptError};
pub use timefmt::{format_walltime, parse_walltime};
pub use views::{sacct, sinfo_at, squeue_at, JobState};
