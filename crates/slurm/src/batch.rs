//! The batch-system facade: submit `sbatch` scripts, let a strategy
//! schedule them, get accounting back.
//!
//! This is the layer that gives nodeshare its "SLURM shape": partition
//! limits are enforced at submission, `--oversubscribe` requests are
//! honored only where the partition allows them, and the result of a run
//! is the familiar accounting view.
//!
//! One deliberate difference from a real workload manager: the simulator
//! must know each job's *true* runtime (real systems discover it by
//! running the binary), so submission takes it as an explicit argument.

use crate::conf::SlurmConf;
use crate::script::{JobScript, ScriptError};
use nodeshare_cluster::JobId;
use nodeshare_engine::{run, Scheduler, SimConfig, SimOutcome};
use nodeshare_perf::{AppCatalog, AppId, CoRunTruth, ContentionModel};
use nodeshare_workload::{JobSpec, Seconds, Workload};

/// Submission failure, mirroring `sbatch` rejections.
#[derive(Clone, Debug, PartialEq)]
pub enum SubmitError {
    /// Script header failed to parse.
    Script(ScriptError),
    /// Named partition does not exist (or no partition is configured).
    NoSuchPartition(String),
    /// Requested walltime exceeds the partition limit.
    WalltimeLimit {
        /// Requested seconds.
        requested: Seconds,
        /// Partition limit.
        limit: Seconds,
    },
    /// More nodes than the cluster has.
    TooManyNodes {
        /// Requested node count.
        requested: u32,
        /// Cluster size.
        available: u32,
    },
    /// Per-node memory request exceeds node capacity.
    TooMuchMemory {
        /// Requested MiB per node.
        requested: u64,
        /// Node capacity MiB.
        capacity: u64,
    },
    /// The command does not name a profiled application.
    UnknownApplication(String),
    /// Walltime is required (no partition default available).
    MissingWalltime,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Script(e) => write!(f, "{e}"),
            SubmitError::NoSuchPartition(p) => write!(f, "no partition {p:?}"),
            SubmitError::WalltimeLimit { requested, limit } => {
                write!(f, "walltime {requested}s exceeds limit {limit}s")
            }
            SubmitError::TooManyNodes {
                requested,
                available,
            } => write!(f, "{requested} nodes requested, cluster has {available}"),
            SubmitError::TooMuchMemory {
                requested,
                capacity,
            } => write!(f, "{requested} MiB/node requested, nodes have {capacity}"),
            SubmitError::UnknownApplication(c) => {
                write!(f, "command {c:?} names no profiled application")
            }
            SubmitError::MissingWalltime => write!(f, "--time is required"),
        }
    }
}

impl std::error::Error for SubmitError {}

impl From<ScriptError> for SubmitError {
    fn from(e: ScriptError) -> Self {
        SubmitError::Script(e)
    }
}

/// An accepted job: the normalized spec plus its display name.
#[derive(Clone, Debug, PartialEq)]
pub struct AcceptedJob {
    /// The normalized job spec handed to the engine.
    pub spec: JobSpec,
    /// Display name (`--job-name`, or the application name).
    pub name: String,
    /// Partition the job landed in.
    pub partition: String,
}

/// The batch system: configuration + accepted jobs.
#[derive(Clone, Debug)]
pub struct BatchSystem {
    conf: SlurmConf,
    catalog: AppCatalog,
    accepted: Vec<AcceptedJob>,
    next_id: u64,
}

impl BatchSystem {
    /// Creates a batch system from configuration and an app catalog.
    pub fn new(conf: SlurmConf, catalog: AppCatalog) -> Self {
        BatchSystem {
            conf,
            catalog,
            accepted: Vec::new(),
            next_id: 0,
        }
    }

    /// The configuration.
    pub fn conf(&self) -> &SlurmConf {
        &self.conf
    }

    /// The application catalog.
    pub fn catalog(&self) -> &AppCatalog {
        &self.catalog
    }

    /// Accepted jobs in submission order.
    pub fn jobs(&self) -> &[AcceptedJob] {
        &self.accepted
    }

    /// Resolves which profiled application a command line runs: the first
    /// catalog app whose name appears (case-insensitively) in the command.
    pub fn resolve_app(&self, command: &str) -> Option<AppId> {
        let lower = command.to_lowercase();
        self.catalog
            .iter()
            .find(|a| lower.contains(&a.name.to_lowercase()))
            .map(|a| a.id)
    }

    /// Submits an `sbatch` script at `submit_time`. `true_runtime` is the
    /// job's actual exclusive runtime (simulation ground truth).
    pub fn submit_script(
        &mut self,
        script_text: &str,
        submit_time: Seconds,
        user: u32,
        true_runtime: Seconds,
    ) -> Result<JobId, SubmitError> {
        let script = JobScript::parse(script_text)?;
        self.submit(script, submit_time, user, true_runtime)
    }

    /// Submits a parsed script.
    pub fn submit(
        &mut self,
        script: JobScript,
        submit_time: Seconds,
        user: u32,
        true_runtime: Seconds,
    ) -> Result<JobId, SubmitError> {
        let partition = match &script.partition {
            Some(name) => self
                .conf
                .partition(name)
                .ok_or_else(|| SubmitError::NoSuchPartition(name.clone()))?,
            None => self
                .conf
                .default_partition()
                .ok_or_else(|| SubmitError::NoSuchPartition("(default)".into()))?,
        };
        let walltime = match (script.walltime, partition.max_time) {
            (Some(w), Some(limit)) if w > limit => {
                return Err(SubmitError::WalltimeLimit {
                    requested: w,
                    limit,
                })
            }
            (Some(w), _) => w,
            (None, Some(limit)) => limit,
            (None, None) => return Err(SubmitError::MissingWalltime),
        };
        if script.nodes > self.conf.cluster.node_count {
            return Err(SubmitError::TooManyNodes {
                requested: script.nodes,
                available: self.conf.cluster.node_count,
            });
        }
        let command = script.command.clone().unwrap_or_default();
        let app = self
            .resolve_app(&command)
            .ok_or_else(|| SubmitError::UnknownApplication(command.clone()))?;
        let mem = script
            .mem_per_node_mib
            .unwrap_or_else(|| self.catalog.profile(app).mem_per_node_mib);
        if mem > self.conf.cluster.node.mem_mib {
            return Err(SubmitError::TooMuchMemory {
                requested: mem,
                capacity: self.conf.cluster.node.mem_mib,
            });
        }
        let id = JobId(self.next_id);
        self.next_id += 1;
        let spec = JobSpec {
            id,
            app,
            nodes: script.nodes,
            submit: submit_time,
            runtime_exclusive: true_runtime,
            // Walltime below the true runtime is allowed — the job will
            // simply be killed, as in real life.
            walltime_estimate: walltime,
            mem_per_node_mib: mem
                .try_into()
                // detlint: allow(D5, invariant stated in the expect message; violating it is a bug, not a recoverable state)
                .expect("memory checked against node capacity fits u32 MiB"),
            share_eligible: script.oversubscribe && partition.oversubscribe,
            user,
            malleable: Default::default(),
        };
        self.accepted.push(AcceptedJob {
            name: script
                .name
                .unwrap_or_else(|| self.catalog.profile(app).name.clone()),
            partition: partition.name.clone(),
            spec,
        });
        Ok(id)
    }

    /// Bulk-loads a pre-built workload (e.g. from the generator or an SWF
    /// trace) as if each job had been submitted normally, bypassing script
    /// parsing but applying partition share gating.
    pub fn load_workload(&mut self, workload: &Workload) {
        let oversub = self
            .conf
            .default_partition()
            .map(|p| p.oversubscribe)
            .unwrap_or(false);
        for j in workload.jobs() {
            let mut spec = j.clone();
            spec.id = JobId(self.next_id);
            self.next_id += 1;
            spec.share_eligible = spec.share_eligible && oversub;
            self.accepted.push(AcceptedJob {
                name: self.catalog.profile(spec.app).name.clone(),
                partition: self
                    .conf
                    .default_partition()
                    .map(|p| p.name.clone())
                    .unwrap_or_default(),
                spec,
            });
        }
    }

    /// The accepted jobs as an engine workload.
    pub fn workload(&self) -> Workload {
        Workload::new(self.accepted.iter().map(|a| a.spec.clone()).collect())
            // detlint: allow(D5, invariant stated in the expect message; violating it is a bug, not a recoverable state)
            .expect("accepted jobs are validated at submission")
    }

    /// Runs the accepted jobs under `scheduler` with the given contention
    /// truth, returning the outcome.
    pub fn run(&self, scheduler: &mut dyn Scheduler, model: &ContentionModel) -> SimOutcome {
        let truth = CoRunTruth::build(&self.catalog, model);
        let config = SimConfig::new(self.conf.cluster);
        run(&self.workload(), &truth, scheduler, &config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodeshare_core::Fcfs;

    fn system() -> BatchSystem {
        BatchSystem::new(SlurmConf::evaluation(), AppCatalog::trinity())
    }

    fn script(nodes: u32, time: &str, app: &str) -> String {
        format!(
            "#SBATCH --nodes={nodes}\n#SBATCH --time={time}\n#SBATCH --oversubscribe\nsrun ./{app}\n"
        )
    }

    #[test]
    fn accepts_and_normalizes() {
        let mut bs = system();
        let id = bs
            .submit_script(&script(4, "01:00:00", "miniFE"), 0.0, 7, 1_800.0)
            .unwrap();
        assert_eq!(id, JobId(0));
        let job = &bs.jobs()[0];
        assert_eq!(job.spec.nodes, 4);
        assert_eq!(job.spec.walltime_estimate, 3_600.0);
        assert!(job.spec.share_eligible);
        assert_eq!(job.name, "miniFE");
        assert_eq!(job.partition, "batch");
        assert_eq!(job.spec.mem_per_node_mib, 24 * 1024);
    }

    #[test]
    fn partition_gates_sharing() {
        let conf = SlurmConf::parse(
            "NodeName=n[0-3] Sockets=1 CoresPerSocket=4 ThreadsPerCore=2 RealMemory=65536\n\
             PartitionName=noshare Default=YES MaxTime=1:00:00 OverSubscribe=NO\n",
        )
        .unwrap();
        let mut bs = BatchSystem::new(conf, AppCatalog::trinity());
        bs.submit_script(&script(1, "10:00", "AMG"), 0.0, 0, 60.0)
            .unwrap();
        assert!(
            !bs.jobs()[0].spec.share_eligible,
            "partition forbids sharing"
        );
    }

    #[test]
    fn rejections() {
        let mut bs = system();
        // Unknown partition.
        let err = bs
            .submit_script("#SBATCH --partition=gpu\nsrun ./miniFE\n", 0.0, 0, 60.0)
            .unwrap_err();
        assert_eq!(err, SubmitError::NoSuchPartition("gpu".into()));
        // Walltime over partition limit (12h).
        let err = bs
            .submit_script(&script(1, "13:00:00", "miniFE"), 0.0, 0, 60.0)
            .unwrap_err();
        assert!(matches!(err, SubmitError::WalltimeLimit { .. }));
        // Too many nodes.
        let err = bs
            .submit_script(&script(500, "01:00:00", "miniFE"), 0.0, 0, 60.0)
            .unwrap_err();
        assert!(matches!(err, SubmitError::TooManyNodes { .. }));
        // Unknown application.
        let err = bs
            .submit_script(&script(1, "01:00:00", "mysteryapp"), 0.0, 0, 60.0)
            .unwrap_err();
        assert!(matches!(err, SubmitError::UnknownApplication(_)));
        // Excess memory.
        let err = bs
            .submit_script(
                "#SBATCH --time=10:00\n#SBATCH --mem=512G\nsrun ./miniFE\n",
                0.0,
                0,
                60.0,
            )
            .unwrap_err();
        assert!(matches!(err, SubmitError::TooMuchMemory { .. }));
        assert!(bs.jobs().is_empty(), "rejected jobs are not accepted");
    }

    #[test]
    fn missing_walltime_takes_partition_limit() {
        let mut bs = system();
        bs.submit_script("srun ./GTC\n", 0.0, 0, 60.0).unwrap();
        assert_eq!(bs.jobs()[0].spec.walltime_estimate, 43_200.0);
    }

    #[test]
    fn end_to_end_run() {
        let mut bs = system();
        for i in 0..4 {
            bs.submit_script(&script(2, "01:00:00", "miniFE"), i as f64 * 10.0, i, 600.0)
                .unwrap();
        }
        let out = bs.run(&mut Fcfs::new(), &ContentionModel::calibrated());
        assert!(out.complete());
        assert_eq!(out.records.len(), 4);
    }

    #[test]
    fn app_resolution_is_case_insensitive() {
        let bs = system();
        assert!(bs.resolve_app("srun ./minife_x86").is_some());
        assert!(bs.resolve_app("mpirun -np 512 SNAP.exe").is_some());
        assert!(bs.resolve_app("sleep 100").is_none());
    }
}
