//! SLURM wall-clock time formats: `MM`, `MM:SS`, `HH:MM:SS`,
//! `D-HH`, `D-HH:MM`, `D-HH:MM:SS`.

use nodeshare_workload::Seconds;

/// Error from parsing a SLURM time string.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TimeParseError(pub String);

impl std::fmt::Display for TimeParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid SLURM time {:?}", self.0)
    }
}

impl std::error::Error for TimeParseError {}

/// Parses a SLURM time specification into seconds.
///
/// Accepted forms (as in `sbatch --time`): `minutes`, `minutes:seconds`,
/// `hours:minutes:seconds`, `days-hours`, `days-hours:minutes`,
/// `days-hours:minutes:seconds`.
pub fn parse_walltime(s: &str) -> Result<Seconds, TimeParseError> {
    let s = s.trim();
    if s.is_empty() {
        return Err(TimeParseError(s.to_string()));
    }
    let bad = || TimeParseError(s.to_string());
    let num = |t: &str| -> Result<u64, TimeParseError> {
        if t.is_empty() {
            return Err(bad());
        }
        t.parse::<u64>().map_err(|_| bad())
    };
    // Checked throughout: `u64::MAX` days (or minutes) is representable as
    // a string but not as seconds, and must parse-fail rather than wrap or
    // panic in debug builds.
    let total = |d: u64, h: u64, m: u64, sec: u64| -> Result<Seconds, TimeParseError> {
        d.checked_mul(24)
            .and_then(|t| t.checked_add(h))
            .and_then(|t| t.checked_mul(60))
            .and_then(|t| t.checked_add(m))
            .and_then(|t| t.checked_mul(60))
            .and_then(|t| t.checked_add(sec))
            .map(|t| t as Seconds)
            .ok_or_else(bad)
    };
    if let Some((days, rest)) = s.split_once('-') {
        let d = num(days)?;
        let parts: Vec<&str> = rest.split(':').collect();
        match parts.as_slice() {
            [h] => total(d, num(h)?, 0, 0),
            [h, m] => total(d, num(h)?, num(m)?, 0),
            [h, m, sec] => total(d, num(h)?, num(m)?, num(sec)?),
            _ => Err(bad()),
        }
    } else {
        let parts: Vec<&str> = s.split(':').collect();
        match parts.as_slice() {
            [m] => total(0, 0, num(m)?, 0),
            [m, sec] => total(0, 0, num(m)?, num(sec)?),
            [h, m, sec] => total(0, num(h)?, num(m)?, num(sec)?),
            _ => Err(bad()),
        }
    }
}

/// Renders seconds in SLURM's canonical `D-HH:MM:SS` / `HH:MM:SS` form.
pub fn format_walltime(seconds: Seconds) -> String {
    let total = seconds.round().max(0.0) as u64;
    let (d, rem) = (total / 86_400, total % 86_400);
    let (h, rem) = (rem / 3_600, rem % 3_600);
    let (m, s) = (rem / 60, rem % 60);
    if d > 0 {
        format!("{d}-{h:02}:{m:02}:{s:02}")
    } else {
        format!("{h:02}:{m:02}:{s:02}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_forms() {
        assert_eq!(parse_walltime("90").unwrap(), 5_400.0);
        assert_eq!(parse_walltime("90:30").unwrap(), 5_430.0);
        assert_eq!(parse_walltime("01:30:00").unwrap(), 5_400.0);
        assert_eq!(parse_walltime("1-06").unwrap(), 108_000.0);
        assert_eq!(parse_walltime("1-06:30").unwrap(), 109_800.0);
        assert_eq!(parse_walltime("1-06:30:15").unwrap(), 109_815.0);
        assert_eq!(parse_walltime(" 10 ").unwrap(), 600.0);
    }

    #[test]
    fn rejects_malformed() {
        for bad in ["", "x", "1:2:3:4", "1-", "1-2:3:4:5", "-5", "1:x"] {
            assert!(parse_walltime(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn formats_canonically() {
        assert_eq!(format_walltime(5_400.0), "01:30:00");
        assert_eq!(format_walltime(109_815.0), "1-06:30:15");
        assert_eq!(format_walltime(0.0), "00:00:00");
        assert_eq!(format_walltime(59.6), "00:01:00");
    }

    #[test]
    fn roundtrip() {
        for s in [60.0, 5_400.0, 109_815.0, 86_400.0] {
            assert_eq!(parse_walltime(&format_walltime(s)).unwrap(), s);
        }
    }
}
