//! Property tests for the SLURM text surfaces: walltime round-trips and
//! `#SBATCH` header parsing edge cases (zero/huge walltimes, malformed
//! lines, memory suffixes).

use nodeshare_slurm::{format_walltime, parse_walltime, JobScript, ScriptError};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `parse ∘ format` is the identity on whole seconds, across the
    /// minute / hour / multi-day rendering regimes.
    #[test]
    fn walltime_roundtrips_whole_seconds(total in 0u64..400_000_000) {
        let seconds = total as f64;
        let text = format_walltime(seconds);
        prop_assert_eq!(parse_walltime(&text).unwrap(), seconds);
    }

    /// `format ∘ parse` is canonical: re-formatting a parsed canonical
    /// string reproduces it exactly.
    #[test]
    fn walltime_formatting_is_canonical(total in 0u64..400_000_000) {
        let text = format_walltime(total as f64);
        let reparsed = parse_walltime(&text).unwrap();
        prop_assert_eq!(format_walltime(reparsed), text);
    }

    /// Every accepted component form agrees with the arithmetic meaning.
    #[test]
    fn walltime_component_forms_agree(
        d in 0u64..5_000,
        h in 0u64..24,
        m in 0u64..60,
        sec in 0u64..60,
    ) {
        let expect = (((d * 24 + h) * 60 + m) * 60 + sec) as f64;
        prop_assert_eq!(parse_walltime(&format!("{d}-{h}:{m}:{sec}")).unwrap(), expect);
        prop_assert_eq!(
            parse_walltime(&format!("{d}-{h}:{m}")).unwrap(),
            expect - sec as f64
        );
        if d == 0 {
            prop_assert_eq!(parse_walltime(&format!("{h}:{m}:{sec}")).unwrap(), expect);
        }
        // Bare minutes form.
        prop_assert_eq!(parse_walltime(&format!("{m}")).unwrap(), (m * 60) as f64);
    }

    /// A well-formed header always parses and every field lands intact,
    /// whatever the option order or `=`/space separator.
    #[test]
    fn well_formed_scripts_parse(
        nodes in 1u32..5_000,
        minutes in 0u64..1_000_000,
        mem_gib in 1u64..1_024,
        share in prop::bool::weighted(0.5),
        spaced in prop::bool::weighted(0.5),
    ) {
        let sep = if spaced { " " } else { "=" };
        let mut text = format!(
            "#!/bin/bash\n#SBATCH --nodes{sep}{nodes}\n#SBATCH --time{sep}{minutes}\n\
             #SBATCH --mem{sep}{mem_gib}G\n"
        );
        if share {
            text.push_str("#SBATCH --oversubscribe\n");
        }
        text.push_str("srun ./app\n");

        let s = JobScript::parse(&text).unwrap();
        prop_assert_eq!(s.nodes, nodes);
        prop_assert_eq!(s.walltime, Some((minutes * 60) as f64));
        prop_assert_eq!(s.mem_per_node_mib, Some(mem_gib * 1024));
        prop_assert_eq!(s.oversubscribe, share);
        prop_assert_eq!(s.command.as_deref(), Some("srun ./app"));
    }
}

#[test]
fn huge_walltimes_fail_instead_of_overflowing() {
    // u64::MAX parses as a number but not as seconds: each of these used
    // to overflow the `((d*24+h)*60+m)*60+sec` fold in debug builds.
    let max = u64::MAX.to_string();
    for text in [
        max.clone(),
        format!("{max}:00"),
        format!("00:{max}:00"),
        format!("{max}-00"),
        format!("{max}-23:59:59"),
        format!("1-{max}"),
    ] {
        assert!(parse_walltime(&text).is_err(), "{text:?} must not overflow");
    }
    // ...while the largest representable day count still parses.
    assert!(parse_walltime("213503982334601-0").is_ok());
}

#[test]
fn zero_walltimes_are_legal_everywhere() {
    assert_eq!(parse_walltime("0").unwrap(), 0.0);
    assert_eq!(parse_walltime("0:00").unwrap(), 0.0);
    assert_eq!(parse_walltime("0-0:0:0").unwrap(), 0.0);
    let s = JobScript::parse("#SBATCH --time=0\nsrun ./app\n").unwrap();
    assert_eq!(s.walltime, Some(0.0));
}

#[test]
fn malformed_script_lines_error_with_context() {
    // Missing value.
    let err = JobScript::parse("#SBATCH --time=\n").unwrap_err();
    assert!(matches!(err, ScriptError::BadValue { .. }), "{err}");
    // Overflowing time propagates as a script error, not a panic.
    let err = JobScript::parse(&format!("#SBATCH --time={}-0\n", u64::MAX)).unwrap_err();
    assert!(matches!(err, ScriptError::BadValue { .. }), "{err}");
    // A directive without `--` is rejected outright.
    let err = JobScript::parse("#SBATCH time=10\n").unwrap_err();
    assert!(matches!(err, ScriptError::BadDirective(_)), "{err}");
    // Negative node counts never wrap into u32.
    let err = JobScript::parse("#SBATCH --nodes=-4\n").unwrap_err();
    assert!(matches!(err, ScriptError::BadValue { .. }), "{err}");
}
